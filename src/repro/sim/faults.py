"""Fault-injection middleware for the simulator's delivery path.

The paper's model (Section 2) admits only *oblivious crash* failures: a
schedule fixed before the protocol flips any coins, killing whole nodes.
Theorems 1, 5 and 7 are stated for exactly that adversary.  This module
generalizes the simulator so experiments can also probe behaviour *outside*
the model — message drops, duplications, delays, reorderings, and crashes
chosen adaptively from observed traffic — without touching protocol code.

A :class:`FaultInjector` is middleware on :class:`repro.sim.network.Network`
round execution:

* :meth:`FaultInjector.begin_round` / :meth:`FaultInjector.end_round`
  bracket each round; adaptive adversaries use ``end_round`` to pick
  crashes online via :meth:`repro.sim.network.Network.schedule_crash`.
* :meth:`FaultInjector.on_broadcast` observes every physical broadcast.
* :meth:`FaultInjector.on_transmit` rewrites one scheduled per-link
  delivery into zero or more ``(due_round, part)`` copies — dropping,
  duplicating or delaying it.  Only injectors with
  ``modifies_delivery = True`` are consulted, so crash-only middleware
  keeps the exact-model delivery path (and its bit-exact determinism).
* :meth:`FaultInjector.arrange_inbox` may permute one receiver's inbox.

The oblivious crash schedule itself is the :class:`ScheduledCrashes`
injector — ``Network(..., crash_rounds=...)`` is sugar for prepending one —
so in-model and out-of-model failures flow through a single interface.

All randomized decisions use a private ``random.Random(seed)`` so fault
sequences are reproducible per seed, and every fault type takes an
explicit budget cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .message import Part
from .network import ROOT_CRASH_ERROR


class FaultInjector:
    """Base middleware: observes everything, changes nothing.

    Subclasses override the hooks they need.  ``modifies_delivery`` must
    be True for injectors that rewrite transmissions or inbox order; it
    routes the network onto the scheduled-delivery path.
    """

    #: Whether this injector rewrites deliveries (drop/dup/delay/reorder).
    modifies_delivery = False

    def __init__(self) -> None:
        self.network = None

    def attach(self, network) -> None:
        """Bind to a network; called once from ``Network.__init__``."""
        self.network = network

    def begin_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` is about to deliver and compute."""

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Hook: ``node`` physically broadcast ``parts`` in round ``rnd``."""

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Rewrite one scheduled delivery; default passes it through.

        ``due`` is the round the copy is currently scheduled to arrive.
        Return ``[]`` to drop, multiple tuples to duplicate, or later due
        rounds to delay.
        """
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Hook: final chance to permute one receiver's round inbox."""
        return envelopes

    def end_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` finished computing and broadcasting."""


class ScheduledCrashes(FaultInjector):
    """The paper's oblivious crash schedule, as an injector.

    Seeds the network's crash map at attach time — semantically identical
    to the historical ``Network(crash_rounds=...)`` behaviour (which now
    delegates here), and composable with chaos injectors.

    The root may never crash (Section 2): an explicit ``root`` argument is
    checked at construction, and a network-declared root
    (``Network(..., root=...)``) at attach time — both reject with the
    same :data:`repro.sim.network.ROOT_CRASH_ERROR` as
    :meth:`repro.adversary.schedule.FailureSchedule.validate`.  The
    :mod:`repro.resilience` failover layer opts out of this strict mode
    with ``allow_root_crash=True`` (a network that sets its own
    ``allow_root_crash`` flag opts out at attach time as well).
    """

    def __init__(
        self,
        crash_rounds,
        root: Optional[int] = None,
        allow_root_crash: bool = False,
    ) -> None:
        super().__init__()
        # Accept a plain mapping or a FailureSchedule-like object.
        rounds = getattr(crash_rounds, "crash_rounds", crash_rounds)
        self.crash_rounds: Dict[int, float] = dict(rounds or {})
        self.allow_root_crash = allow_root_crash
        if (
            root is not None
            and root in self.crash_rounds
            and not allow_root_crash
        ):
            raise ValueError(ROOT_CRASH_ERROR)

    def attach(self, network) -> None:
        """Seed the network's crash map (earliest round wins per node)."""
        super().attach(network)
        if (
            network.root is not None
            and network.root in self.crash_rounds
            and not self.allow_root_crash
            and not getattr(network, "allow_root_crash", False)
        ):
            raise ValueError(ROOT_CRASH_ERROR)
        for node, rnd in self.crash_rounds.items():
            current = network.crash_rounds.get(node)
            network.crash_rounds[node] = (
                rnd if current is None else min(current, rnd)
            )


@dataclass
class FaultCounts:
    """Tally of injected faults, for reporting alongside run results."""

    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0

    @property
    def total(self) -> int:
        """All injected faults combined."""
        return self.drops + self.duplicates + self.delays + self.reorders

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delays": self.delays,
            "reorders": self.reorders,
        }


class MessageFaults(FaultInjector):
    """Drop / duplicate / delay / reorder in-flight messages.

    Faults are decided independently per scheduled (sender, receiver,
    part) copy with the given probabilities, using a deterministic
    per-``seed`` RNG, under explicit budget caps:

    Args:
        drop: Probability a delivery copy is silently lost.
        duplicate: Probability a copy is delivered twice (the duplicate
            arrives 1..``max_delay`` rounds later).
        delay: Probability a copy is postponed by 1..``max_delay`` rounds.
        max_delay: Largest injected postponement, in rounds.
        reorder: Probability a receiver's round inbox is shuffled.
        seed: Seed of the private fault RNG.
        max_drops / max_duplicates / max_delays / max_reorders: Hard caps
            per fault type; ``None`` means unlimited.
        protect: Node ids whose incident deliveries are never faulted
            (e.g. the root, to keep the root-safety assumption).
    """

    modifies_delivery = True

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        max_delay: int = 3,
        reorder: float = 0.0,
        seed: int = 0,
        max_drops: Optional[int] = None,
        max_duplicates: Optional[int] = None,
        max_delays: Optional[int] = None,
        max_reorders: Optional[int] = None,
        protect: Iterable[int] = (),
    ) -> None:
        super().__init__()
        for name, rate in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("delay", delay),
            ("reorder", reorder),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.max_delay = max_delay
        self.reorder = reorder
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_drops = max_drops
        self.max_duplicates = max_duplicates
        self.max_delays = max_delays
        self.max_reorders = max_reorders
        self.protect = frozenset(protect)
        self.counts = FaultCounts()

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "key=value[,key=value...] with keys drop, dup|duplicate, delay, "
        "reorder (rates in [0, 1]) and max_delay (integer rounds >= 1)"
    )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0, **kwargs) -> "MessageFaults":
        """Build from a CLI spec like ``drop=0.1,dup=0.05,delay=0.1,reorder=0.2``.

        Keys: ``drop``, ``dup``/``duplicate``, ``delay``, ``reorder``
        (rates) and ``max_delay`` (rounds).  Unknown keys, missing ``=``,
        non-numeric values, and repeated keys all raise ``ValueError``
        naming the offending token and :data:`SPEC_GRAMMAR`.
        """
        keys = {
            "drop": "drop",
            "dup": "duplicate",
            "duplicate": "duplicate",
            "delay": "delay",
            "reorder": "reorder",
            "max_delay": "max_delay",
        }

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad fault spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        values: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, raw = item.partition("=")
            key = key.strip().replace("-", "_")
            if not eq:
                raise reject(item, "needs key=value")
            if key not in keys:
                raise reject(item, f"unknown fault key {key!r}")
            canonical = keys[key]
            if canonical in values:
                raise reject(item, f"key {canonical!r} given more than once")
            raw = raw.strip()
            try:
                values[canonical] = (
                    int(raw) if canonical == "max_delay" else float(raw)
                )
            except ValueError:
                expected = (
                    "an integer" if canonical == "max_delay" else "a number"
                )
                raise reject(item, f"value {raw!r} is not {expected}") from None
        values.update(kwargs)
        return cls(seed=seed, **values)

    def _budget_left(self, used: int, cap: Optional[int]) -> bool:
        return cap is None or used < cap

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Apply drop, then delay, then duplication to one delivery copy."""
        if sender in self.protect or receiver in self.protect:
            return [(due, part)]
        rng = self.rng
        if (
            self.drop
            and self._budget_left(self.counts.drops, self.max_drops)
            and rng.random() < self.drop
        ):
            self.counts.drops += 1
            return []
        if (
            self.delay
            and self._budget_left(self.counts.delays, self.max_delays)
            and rng.random() < self.delay
        ):
            self.counts.delays += 1
            due += rng.randint(1, self.max_delay)
        deliveries = [(due, part)]
        if (
            self.duplicate
            and self._budget_left(self.counts.duplicates, self.max_duplicates)
            and rng.random() < self.duplicate
        ):
            self.counts.duplicates += 1
            deliveries.append((due + rng.randint(1, self.max_delay), part))
        return deliveries

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Shuffle one receiver's inbox with probability ``reorder``."""
        if (
            self.reorder
            and len(envelopes) > 1
            and receiver not in self.protect
            and self._budget_left(self.counts.reorders, self.max_reorders)
            and self.rng.random() < self.reorder
        ):
            self.counts.reorders += 1
            shuffled = list(envelopes)
            self.rng.shuffle(shuffled)
            return shuffled
        return envelopes

    def __repr__(self) -> str:
        return (
            f"MessageFaults(drop={self.drop}, duplicate={self.duplicate}, "
            f"delay={self.delay}, reorder={self.reorder}, seed={self.seed})"
        )
