"""Fault-injection middleware for the simulator's delivery path.

The paper's model (Section 2) admits only *oblivious crash* failures: a
schedule fixed before the protocol flips any coins, killing whole nodes.
Theorems 1, 5 and 7 are stated for exactly that adversary.  This module
generalizes the simulator so experiments can also probe behaviour *outside*
the model — message drops, duplications, delays, reorderings, and crashes
chosen adaptively from observed traffic — without touching protocol code.

A :class:`FaultInjector` is middleware on :class:`repro.sim.network.Network`
round execution:

* :meth:`FaultInjector.begin_round` / :meth:`FaultInjector.end_round`
  bracket each round; adaptive adversaries use ``end_round`` to pick
  crashes online via :meth:`repro.sim.network.Network.schedule_crash`.
* :meth:`FaultInjector.on_broadcast` observes every physical broadcast.
* :meth:`FaultInjector.on_transmit` rewrites one scheduled per-link
  delivery into zero or more ``(due_round, part)`` copies — dropping,
  duplicating or delaying it.  Only injectors with
  ``modifies_delivery = True`` are consulted, so crash-only middleware
  keeps the exact-model delivery path (and its bit-exact determinism).
* :meth:`FaultInjector.arrange_inbox` may permute one receiver's inbox.

The oblivious crash schedule itself is the :class:`ScheduledCrashes`
injector — ``Network(..., crash_rounds=...)`` is sugar for prepending one —
so in-model and out-of-model failures flow through a single interface.

All randomized decisions use a private ``random.Random(seed)`` so fault
sequences are reproducible per seed, and every fault type takes an
explicit budget cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .message import Part
from .network import ROOT_CRASH_ERROR


class FaultInjector:
    """Base middleware: observes everything, changes nothing.

    Subclasses override the hooks they need.  ``modifies_delivery`` must
    be True for injectors that rewrite transmissions or inbox order; it
    routes the network onto the scheduled-delivery path.
    """

    #: Whether this injector rewrites deliveries (drop/dup/delay/reorder).
    modifies_delivery = False

    def __init__(self) -> None:
        self.network = None

    def attach(self, network) -> None:
        """Bind to a network; called once from ``Network.__init__``."""
        self.network = network

    def begin_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` is about to deliver and compute."""

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Hook: ``node`` physically broadcast ``parts`` in round ``rnd``."""

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Rewrite one scheduled delivery; default passes it through.

        ``due`` is the round the copy is currently scheduled to arrive.
        Return ``[]`` to drop, multiple tuples to duplicate, or later due
        rounds to delay.
        """
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Hook: final chance to permute one receiver's round inbox."""
        return envelopes

    def end_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` finished computing and broadcasting."""


class ScheduledCrashes(FaultInjector):
    """The paper's oblivious crash schedule, as an injector.

    Seeds the network's crash map at attach time — semantically identical
    to the historical ``Network(crash_rounds=...)`` behaviour (which now
    delegates here), and composable with chaos injectors.

    The root may never crash (Section 2): an explicit ``root`` argument is
    checked at construction, and a network-declared root
    (``Network(..., root=...)``) at attach time — both reject with the
    same :data:`repro.sim.network.ROOT_CRASH_ERROR` as
    :meth:`repro.adversary.schedule.FailureSchedule.validate`.  The
    :mod:`repro.resilience` failover layer opts out of this strict mode
    with ``allow_root_crash=True`` (a network that sets its own
    ``allow_root_crash`` flag opts out at attach time as well).
    """

    def __init__(
        self,
        crash_rounds,
        root: Optional[int] = None,
        allow_root_crash: bool = False,
    ) -> None:
        super().__init__()
        # Accept a plain mapping or a FailureSchedule-like object.
        rounds = getattr(crash_rounds, "crash_rounds", crash_rounds)
        self.crash_rounds: Dict[int, float] = dict(rounds or {})
        self.allow_root_crash = allow_root_crash
        if (
            root is not None
            and root in self.crash_rounds
            and not allow_root_crash
        ):
            raise ValueError(ROOT_CRASH_ERROR)

    def attach(self, network) -> None:
        """Seed the network's crash map (earliest round wins per node)."""
        super().attach(network)
        if (
            network.root is not None
            and network.root in self.crash_rounds
            and not self.allow_root_crash
            and not getattr(network, "allow_root_crash", False)
        ):
            raise ValueError(ROOT_CRASH_ERROR)
        for node, rnd in self.crash_rounds.items():
            current = network.crash_rounds.get(node)
            network.crash_rounds[node] = (
                rnd if current is None else min(current, rnd)
            )


#: Rejoin mode: the node returns with its persisted local value and
#: transport seq state (a clean reboot from durable storage).
REJOIN_DURABLE = "durable"
#: Rejoin mode: all local state is lost; the node must re-fetch its
#: contribution slot from a neighbour anti-entropy snapshot.
REJOIN_AMNESIAC = "amnesiac"

REJOIN_MODES = (REJOIN_DURABLE, REJOIN_AMNESIAC)


class ChurnSchedule(ScheduledCrashes):
    """Crash-*recovery* churn: revivable crashes plus link flap windows.

    Extends the paper's oblivious crash schedule with two out-of-model
    event classes studied by the Flow-Updating / gossip-aggregation line:

    * **crash/revive cycles** — a node goes down at round ``c`` and comes
      back at round ``v`` in one of two rejoin modes:
      :data:`REJOIN_DURABLE` (local value and transport seq state
      persisted) or :data:`REJOIN_AMNESIAC` (state lost; the node must
      recover its contribution slot via the
      :mod:`repro.resilience.epochs` rejoin handshake).  A cycle with no
      revive round is an ordinary permanent crash.
    * **link flaps** — an edge carries nothing in either direction for a
      closed window of delivery rounds, then comes back.

    The schedule stays oblivious: every event is fixed before execution.
    Cycles are realized through :meth:`repro.sim.network.Network.schedule_downtime`
    and flaps through :meth:`~repro.sim.network.Network.schedule_link_flap`,
    both enforced by the network itself on *both* delivery paths, so a
    flap-only churn schedule keeps the exact-model fast path.  At each
    revive round the injector bumps the node's incarnation and calls the
    handler's ``on_churn_revive(mode, incarnation, rnd)`` hook when one
    exists (the reliable transport uses it to reset or persist seq state).

    Illegal event structures are rejected at construction (reviving a
    never-crashed node, a revive at or before its crash, overlapping
    cycles, unknown rejoin modes); events naming unknown nodes or
    nonexistent edges are rejected at attach time by the network, or
    earlier via :meth:`validate`.
    """

    def __init__(
        self,
        cycles=None,
        flaps=None,
        root: Optional[int] = None,
        allow_root_crash: bool = False,
        incarnation_base=None,
    ) -> None:
        #: Per node: list of ``(crash_round, revive_round | None, mode)``
        #: sorted by crash round.  ``revive_round is None`` is permanent.
        self.cycles: Dict[int, List[Tuple[int, Optional[int], str]]] = {}
        for node, entries in dict(cycles or {}).items():
            normalized = []
            for entry in entries:
                crash_r, revive_r, mode = (tuple(entry) + (REJOIN_DURABLE,))[:3]
                if mode not in REJOIN_MODES:
                    raise ValueError(
                        f"unknown rejoin mode {mode!r} for node {node} "
                        f"(expected one of {REJOIN_MODES})"
                    )
                if crash_r < 1:
                    raise ValueError(
                        f"node {node} cannot crash at round {crash_r} (< 1)"
                    )
                if revive_r is not None and revive_r <= crash_r:
                    raise ValueError(
                        f"node {node} revives at round {revive_r} but "
                        f"crashed at round {crash_r}: a revive must come "
                        "strictly after its crash"
                    )
                normalized.append((crash_r, revive_r, mode))
            normalized.sort()
            for (c1, v1, _m1), (c2, _v2, _m2) in zip(
                normalized, normalized[1:]
            ):
                if v1 is None:
                    raise ValueError(
                        f"node {node} crashes at round {c2} but its crash "
                        f"at round {c1} never revives (reviving a "
                        "never-crashed — or re-crashing a still-dead — "
                        "node is illegal)"
                    )
                if c2 < v1:
                    raise ValueError(
                        f"node {node} crashes at round {c2} while still "
                        f"down from round {c1} (revives at {v1})"
                    )
            if normalized:
                self.cycles[node] = normalized
        #: Link flap windows as ``(u, v, start, end)`` with ``start <= end``
        #: (closed window of suppressed delivery rounds).
        self.flaps: List[Tuple[int, int, int, int]] = []
        for entry in flaps or ():
            u, v, start, end = entry
            if u == v:
                raise ValueError(f"cannot flap self-loop edge {u}-{v}")
            if start < 1 or end < start:
                raise ValueError(
                    f"flap window for edge {u}-{v} must satisfy "
                    f"1 <= start <= end (got {start}-{end})"
                )
            self.flaps.append((u, v, start, end))
        self.flaps.sort()
        #: Incarnations accumulated before this schedule's round 1 (used
        #: by per-epoch shifted views so frame incarnation numbers stay
        #: globally monotonic across epochs).
        self.incarnation_base: Dict[int, int] = dict(incarnation_base or {})
        #: Revivals enacted so far: ``(round, node, mode, incarnation)``.
        self.revive_log: List[Tuple[int, int, str, int]] = []
        permanent = {
            node: entries[-1][0]
            for node, entries in self.cycles.items()
            if entries and entries[-1][1] is None
        }
        super().__init__(
            permanent, root=root, allow_root_crash=allow_root_crash
        )
        if (
            root is not None
            and root in self.cycles
            and not allow_root_crash
        ):
            raise ValueError(ROOT_CRASH_ERROR)

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "comma-separated events: '<node>:crash@r<R>', "
        "'<node>:revive@r<R>[:durable|:amnesiac]' and "
        "'flap:<u>-<v>@r<R1>-r<R2>' with rounds >= 1 "
        "(e.g. '5:crash@r3,5:revive@r7:amnesiac,flap:1-2@r2-r5')"
    )

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "ChurnSchedule":
        """Build from a CLI spec like
        ``5:crash@r3,5:revive@r7:amnesiac,flap:1-2@r2-r5``.

        Unknown event kinds, malformed rounds, revives of never-crashed
        nodes, and empty flap windows all raise ``ValueError`` naming the
        offending token and :data:`SPEC_GRAMMAR`.
        """

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad churn spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        def parse_round(raw: str, token: str) -> int:
            raw = raw.strip()
            if raw.startswith("r"):
                raw = raw[1:]
            try:
                value = int(raw)
            except ValueError:
                raise reject(token, f"round {raw!r} is not an integer") from None
            if value < 1:
                raise reject(token, f"round {value} is < 1")
            return value

        events: List[Tuple[int, str, int, str]] = []
        flaps: List[Tuple[int, int, int, int]] = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if item.startswith("flap:"):
                body = item[len("flap:"):]
                edge, at, window = body.partition("@")
                if not at:
                    raise reject(item, "needs flap:<u>-<v>@r<R1>-r<R2>")
                u_raw, dash, v_raw = edge.partition("-")
                if not dash:
                    raise reject(item, "edge needs the form <u>-<v>")
                try:
                    u, v = int(u_raw), int(v_raw)
                except ValueError:
                    raise reject(item, f"edge {edge!r} is not a node pair") from None
                start_raw, dash, end_raw = window.partition("-")
                if not dash:
                    raise reject(item, "window needs the form r<R1>-r<R2>")
                start = parse_round(start_raw, item)
                end = parse_round(end_raw, item)
                if end < start:
                    raise reject(item, f"flap window {start}-{end} is empty")
                flaps.append((u, v, start, end))
                continue
            pieces = item.split(":")
            if len(pieces) < 2:
                raise reject(item, "needs <node>:crash@r<R> or <node>:revive@r<R>")
            try:
                node = int(pieces[0])
            except ValueError:
                raise reject(item, f"node {pieces[0]!r} is not an integer") from None
            action, at, round_raw = pieces[1].partition("@")
            action = action.strip()
            if not at:
                raise reject(item, "event needs @r<R>")
            rnd = parse_round(round_raw, item)
            if action == "crash":
                if len(pieces) > 2:
                    raise reject(item, "crash events take no mode suffix")
                events.append((node, "crash", rnd, ""))
            elif action == "revive":
                mode = pieces[2].strip() if len(pieces) > 2 else REJOIN_DURABLE
                if mode not in REJOIN_MODES:
                    raise reject(item, f"unknown rejoin mode {mode!r}")
                events.append((node, "revive", rnd, mode))
            else:
                raise reject(item, f"unknown churn event {action!r}")

        cycles: Dict[int, List[Tuple[int, Optional[int], str]]] = {}
        open_crash: Dict[int, int] = {}
        for node, action, rnd, mode in sorted(
            events, key=lambda e: (e[0], e[2])
        ):
            if action == "crash":
                if node in open_crash:
                    raise reject(
                        spec,
                        f"node {node} crashes at round {rnd} while still "
                        f"down from round {open_crash[node]}",
                    )
                open_crash[node] = rnd
            else:
                if node not in open_crash:
                    raise reject(
                        spec,
                        f"node {node} revives at round {rnd} but never "
                        "crashed before it",
                    )
                crash_r = open_crash.pop(node)
                if rnd <= crash_r:
                    raise reject(
                        spec,
                        f"node {node} revives at round {rnd}, at or "
                        f"before its crash at round {crash_r}",
                    )
                cycles.setdefault(node, []).append((crash_r, rnd, mode))
        for node, crash_r in open_crash.items():
            cycles.setdefault(node, []).append((crash_r, None, REJOIN_DURABLE))
        return cls(cycles=cycles, flaps=flaps, **kwargs)

    # -------------------------------------------------------------- #
    # Introspection used by the epoch manager and transport.
    # -------------------------------------------------------------- #

    @property
    def has_flaps(self) -> bool:
        return bool(self.flaps)

    @property
    def has_revives(self) -> bool:
        return any(
            revive_r is not None
            for entries in self.cycles.values()
            for _c, revive_r, _m in entries
        )

    def revive_events(self) -> List[Tuple[int, int, str]]:
        """All revivals as ``(round, node, mode)``, sorted by round."""
        out = [
            (revive_r, node, mode)
            for node, entries in self.cycles.items()
            for _c, revive_r, mode in entries
            if revive_r is not None
        ]
        out.sort()
        return out

    def incarnation_at(self, node: int, rnd: int) -> int:
        """The node's incarnation in round ``rnd`` (revivals enacted at
        their revive round), including any cross-epoch base."""
        local = sum(
            1
            for _c, revive_r, _m in self.cycles.get(node, ())
            if revive_r is not None and revive_r <= rnd
        )
        return self.incarnation_base.get(node, 0) + local

    def is_down(self, node: int, rnd: int) -> bool:
        """Whether the schedule has ``node`` down in round ``rnd``."""
        for crash_r, revive_r, _mode in self.cycles.get(node, ()):
            if crash_r <= rnd and (revive_r is None or rnd < revive_r):
                return True
        return False

    def max_event_round(self) -> int:
        """The last round any scheduled event fires (0 when empty)."""
        rounds = [0]
        for entries in self.cycles.values():
            for crash_r, revive_r, _m in entries:
                rounds.append(crash_r)
                if revive_r is not None:
                    rounds.append(revive_r)
        for _u, _v, _s, end in self.flaps:
            rounds.append(end)
        return max(rounds)

    def validate(self, topology) -> None:
        """Reject events naming unknown nodes or nonexistent edges."""
        nodes = set(topology.nodes())
        edges = {frozenset(e) for e in topology.edges()}
        for node in self.cycles:
            if node not in nodes:
                raise ValueError(
                    f"churn schedule names unknown node {node}"
                )
        for u, v, start, end in self.flaps:
            if frozenset((u, v)) not in edges:
                raise ValueError(
                    f"churn schedule flaps nonexistent edge {u}-{v} "
                    f"(rounds {start}-{end})"
                )

    def shifted(self, elapsed: int) -> "ChurnSchedule":
        """A view of this schedule rebased ``elapsed`` rounds later.

        Used by the epoch manager: epoch ``e + 1`` starts its network at
        round 1 after ``elapsed`` global rounds have run.  Cycles fully in
        the past disappear (their revivals feed ``incarnation_base`` so
        frame incarnations stay monotonic); cycles straddling the boundary
        become a downtime starting at round 1; future events shift.
        """
        cycles: Dict[int, List[Tuple[int, Optional[int], str]]] = {}
        base = dict(self.incarnation_base)
        for node, entries in self.cycles.items():
            kept = []
            for crash_r, revive_r, mode in entries:
                new_crash = crash_r - elapsed
                new_revive = None if revive_r is None else revive_r - elapsed
                if new_revive is not None and new_revive <= 1:
                    # Fully in the past: the node is back up; only the
                    # incarnation bump survives.
                    base[node] = base.get(node, 0) + 1
                    continue
                kept.append((max(1, new_crash), new_revive, mode))
            if kept:
                cycles[node] = kept
        flaps = []
        for u, v, start, end in self.flaps:
            new_end = end - elapsed
            if new_end < 1:
                continue
            flaps.append((u, v, max(1, start - elapsed), new_end))
        return ChurnSchedule(
            cycles=cycles,
            flaps=flaps,
            allow_root_crash=self.allow_root_crash,
            incarnation_base=base,
        )

    # -------------------------------------------------------------- #
    # Serialization (bundle params / WorkUnit specs).
    # -------------------------------------------------------------- #

    def as_jsonable(self) -> Dict:
        """JSON-ready form, round-tripped by :meth:`from_jsonable`."""
        return {
            "cycles": {
                str(node): [list(entry) for entry in entries]
                for node, entries in sorted(self.cycles.items())
            },
            "flaps": [list(entry) for entry in self.flaps],
            "allow_root_crash": self.allow_root_crash,
            "incarnation_base": {
                str(node): inc
                for node, inc in sorted(self.incarnation_base.items())
                if inc
            },
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "ChurnSchedule":
        return cls(
            cycles={
                int(node): [tuple(entry) for entry in entries]
                for node, entries in (data.get("cycles") or {}).items()
            },
            flaps=[tuple(entry) for entry in data.get("flaps") or ()],
            allow_root_crash=bool(data.get("allow_root_crash")),
            incarnation_base={
                int(node): inc
                for node, inc in (data.get("incarnation_base") or {}).items()
            },
        )

    # -------------------------------------------------------------- #
    # Injector hooks.
    # -------------------------------------------------------------- #

    def attach(self, network) -> None:
        """Seed permanent crashes, downtimes and flap windows."""
        super().attach(network)  # permanent crashes + root protection
        for node, entries in self.cycles.items():
            if (
                network.root is not None
                and node == network.root
                and not self.allow_root_crash
                and not getattr(network, "allow_root_crash", False)
            ):
                raise ValueError(ROOT_CRASH_ERROR)
            for crash_r, revive_r, _mode in entries:
                if revive_r is not None:
                    network.schedule_downtime(node, crash_r, revive_r)
        for u, v, start, end in self.flaps:
            network.schedule_link_flap(u, v, start, end)
        for node, inc in self.incarnation_base.items():
            if inc > network.incarnations.get(node, 0):
                network.incarnations[node] = inc

    def begin_round(self, rnd: int) -> None:
        """Enact revivals due this round: bump the incarnation and give
        the handler its ``on_churn_revive`` hook."""
        for node, entries in self.cycles.items():
            for _crash_r, revive_r, mode in entries:
                if revive_r != rnd:
                    continue
                incarnation = self.network.bump_incarnation(node)
                self.revive_log.append((rnd, node, mode, incarnation))
                handler = self.network.handlers.get(node)
                hook = getattr(handler, "on_churn_revive", None)
                if hook is not None:
                    hook(mode, incarnation, rnd)


def random_churn(
    topology,
    rate: float,
    rng: random.Random,
    horizon: int,
    amnesiac: float = 0.25,
    flap_rate: float = 0.0,
    root: Optional[int] = None,
) -> ChurnSchedule:
    """Sample a bounded churn schedule at a per-node churn ``rate``.

    Each non-root node independently undergoes one crash/revive cycle
    with probability ``rate``: the crash round is uniform in
    ``[2, horizon]``, the outage lasts 1..``max(1, horizon // 2)`` rounds,
    and the rejoin is amnesiac with probability ``amnesiac``.  Each edge
    independently flaps for a short window with probability ``flap_rate``.
    The draw order is fixed (sorted nodes, then sorted edges) so schedules
    are reproducible per RNG state.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"churn rate must be in [0, 1], got {rate}")
    if not 0.0 <= amnesiac <= 1.0:
        raise ValueError(f"amnesiac fraction must be in [0, 1], got {amnesiac}")
    if not 0.0 <= flap_rate <= 1.0:
        raise ValueError(f"flap rate must be in [0, 1], got {flap_rate}")
    horizon = max(2, horizon)
    cycles: Dict[int, List[Tuple[int, Optional[int], str]]] = {}
    for node in sorted(topology.nodes()):
        if root is not None and node == root:
            continue
        if rng.random() >= rate:
            continue
        crash_r = rng.randint(2, horizon)
        down_for = rng.randint(1, max(1, horizon // 2))
        mode = (
            REJOIN_AMNESIAC if rng.random() < amnesiac else REJOIN_DURABLE
        )
        cycles[node] = [(crash_r, crash_r + down_for, mode)]
    flaps: List[Tuple[int, int, int, int]] = []
    if flap_rate:
        for u, v in sorted(tuple(sorted(e)) for e in topology.edges()):
            if rng.random() >= flap_rate:
                continue
            start = rng.randint(2, horizon)
            flaps.append((u, v, start, start + rng.randint(0, 3)))
    return ChurnSchedule(cycles=cycles, flaps=flaps, root=root)


@dataclass
class FaultCounts:
    """Tally of injected faults, for reporting alongside run results."""

    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0

    @property
    def total(self) -> int:
        """All injected faults combined."""
        return self.drops + self.duplicates + self.delays + self.reorders

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delays": self.delays,
            "reorders": self.reorders,
        }


class MessageFaults(FaultInjector):
    """Drop / duplicate / delay / reorder in-flight messages.

    Faults are decided independently per scheduled (sender, receiver,
    part) copy with the given probabilities, using a deterministic
    per-``seed`` RNG, under explicit budget caps:

    Args:
        drop: Probability a delivery copy is silently lost.
        duplicate: Probability a copy is delivered twice (the duplicate
            arrives 1..``max_delay`` rounds later).
        delay: Probability a copy is postponed by 1..``max_delay`` rounds.
        max_delay: Largest injected postponement, in rounds.
        reorder: Probability a receiver's round inbox is shuffled.
        seed: Seed of the private fault RNG.
        max_drops / max_duplicates / max_delays / max_reorders: Hard caps
            per fault type; ``None`` means unlimited.
        protect: Node ids whose incident deliveries are never faulted
            (e.g. the root, to keep the root-safety assumption).
    """

    modifies_delivery = True

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        max_delay: int = 3,
        reorder: float = 0.0,
        seed: int = 0,
        max_drops: Optional[int] = None,
        max_duplicates: Optional[int] = None,
        max_delays: Optional[int] = None,
        max_reorders: Optional[int] = None,
        protect: Iterable[int] = (),
    ) -> None:
        super().__init__()
        for name, rate in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("delay", delay),
            ("reorder", reorder),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.max_delay = max_delay
        self.reorder = reorder
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_drops = max_drops
        self.max_duplicates = max_duplicates
        self.max_delays = max_delays
        self.max_reorders = max_reorders
        self.protect = frozenset(protect)
        self.counts = FaultCounts()

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "key=value[,key=value...] with keys drop, dup|duplicate, delay, "
        "reorder (rates in [0, 1]) and max_delay (integer rounds >= 1)"
    )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0, **kwargs) -> "MessageFaults":
        """Build from a CLI spec like ``drop=0.1,dup=0.05,delay=0.1,reorder=0.2``.

        Keys: ``drop``, ``dup``/``duplicate``, ``delay``, ``reorder``
        (rates) and ``max_delay`` (rounds).  Unknown keys, missing ``=``,
        non-numeric values, and repeated keys all raise ``ValueError``
        naming the offending token and :data:`SPEC_GRAMMAR`.
        """
        keys = {
            "drop": "drop",
            "dup": "duplicate",
            "duplicate": "duplicate",
            "delay": "delay",
            "reorder": "reorder",
            "max_delay": "max_delay",
        }

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad fault spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        values: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, raw = item.partition("=")
            key = key.strip().replace("-", "_")
            if not eq:
                raise reject(item, "needs key=value")
            if key not in keys:
                raise reject(item, f"unknown fault key {key!r}")
            canonical = keys[key]
            if canonical in values:
                raise reject(item, f"key {canonical!r} given more than once")
            raw = raw.strip()
            try:
                values[canonical] = (
                    int(raw) if canonical == "max_delay" else float(raw)
                )
            except ValueError:
                expected = (
                    "an integer" if canonical == "max_delay" else "a number"
                )
                raise reject(item, f"value {raw!r} is not {expected}") from None
        values.update(kwargs)
        return cls(seed=seed, **values)

    def _budget_left(self, used: int, cap: Optional[int]) -> bool:
        return cap is None or used < cap

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Apply drop, then delay, then duplication to one delivery copy."""
        if sender in self.protect or receiver in self.protect:
            return [(due, part)]
        rng = self.rng
        if (
            self.drop
            and self._budget_left(self.counts.drops, self.max_drops)
            and rng.random() < self.drop
        ):
            self.counts.drops += 1
            return []
        if (
            self.delay
            and self._budget_left(self.counts.delays, self.max_delays)
            and rng.random() < self.delay
        ):
            self.counts.delays += 1
            due += rng.randint(1, self.max_delay)
        deliveries = [(due, part)]
        if (
            self.duplicate
            and self._budget_left(self.counts.duplicates, self.max_duplicates)
            and rng.random() < self.duplicate
        ):
            self.counts.duplicates += 1
            deliveries.append((due + rng.randint(1, self.max_delay), part))
        return deliveries

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Shuffle one receiver's inbox with probability ``reorder``."""
        if (
            self.reorder
            and len(envelopes) > 1
            and receiver not in self.protect
            and self._budget_left(self.counts.reorders, self.max_reorders)
            and self.rng.random() < self.reorder
        ):
            self.counts.reorders += 1
            shuffled = list(envelopes)
            self.rng.shuffle(shuffled)
            return shuffled
        return envelopes

    def __repr__(self) -> str:
        return (
            f"MessageFaults(drop={self.drop}, duplicate={self.duplicate}, "
            f"delay={self.delay}, reorder={self.reorder}, seed={self.seed})"
        )


@dataclass
class CorruptionCounts:
    """Tally of injected corruptions, for reporting alongside run results."""

    bitflips: int = 0
    truncations: int = 0
    stale_replays: int = 0

    @property
    def total(self) -> int:
        """All injected corruptions combined."""
        return self.bitflips + self.truncations + self.stale_replays

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "bitflips": self.bitflips,
            "truncations": self.truncations,
            "stale_replays": self.stale_replays,
        }


def flip_int_leaf(payload, rng: random.Random):
    """Flip one random bit in one random int leaf of a payload tree.

    Returns the rewritten payload, or ``None`` when the payload holds no
    int leaves to corrupt (e.g. the empty ``()`` of an abort part).  The
    result is built only from tuples, ints, strs and ``None``, so its
    ``repr`` round-trips through ``ast.literal_eval`` — the property the
    record/replay layer relies on to replay corrupted runs bit-exactly.
    """
    leaves: List[Tuple] = []

    def walk(value, path):
        if isinstance(value, bool):
            return
        if isinstance(value, int):
            leaves.append(path)
        elif isinstance(value, tuple):
            for i, item in enumerate(value):
                walk(item, path + (i,))

    walk(payload, ())
    if not leaves:
        return None
    path = leaves[rng.randrange(len(leaves))]

    def rewrite(value, path):
        if not path:
            bit = rng.randrange(max(1, value.bit_length() + 1))
            return value ^ (1 << bit)
        i = path[0]
        return tuple(
            rewrite(item, path[1:]) if j == i else item
            for j, item in enumerate(value)
        )

    return rewrite(payload, path)


class MessageCorruption(FaultInjector):
    """Silently corrupt in-flight message content.

    Unlike :class:`MessageFaults` (which loses, duplicates or postpones
    otherwise-correct copies), this injector rewrites a copy's *payload* —
    the silent-data-corruption class the paper's crash-only model excludes.
    Three modes, each rolled independently per scheduled delivery copy
    (first hit wins):

    * ``bitflip`` — XOR one random bit of one random int leaf of the
      payload (the classic flipped-bit on the wire);
    * ``truncate`` — drop the payload's last field (a short read);
    * ``stale`` — replace the copy with the previous part the same link
      carried (a replayed old frame: authentic content, wrong time).

    Rates apply per copy; ``link_scale`` multiplies them on selected
    ``(sender, receiver)`` links so tests can make one link persistently
    corrupt (the quarantine trigger).  Every corruption is remembered as
    ``(sender, receiver, content_key)``, and :meth:`arrange_inbox`
    matches delivered envelopes against that set out-of-band — the
    :class:`repro.sim.monitors.CorruptionOracleMonitor` compares this
    ground truth with the integrity layer's rejection log to flag any run
    that silently *accepted* a corrupted frame.

    Corrupted payloads stay within tuples/ints/strs/``None`` so recorded
    runs replay bit-exactly (see :func:`flip_int_leaf`).
    """

    modifies_delivery = True

    def __init__(
        self,
        bitflip: float = 0.0,
        truncate: float = 0.0,
        stale: float = 0.0,
        seed: int = 0,
        max_bitflips: Optional[int] = None,
        max_truncations: Optional[int] = None,
        max_stales: Optional[int] = None,
        protect: Iterable[int] = (),
        link_scale: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> None:
        super().__init__()
        for name, rate in (
            ("bitflip", bitflip),
            ("truncate", truncate),
            ("stale", stale),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        self.bitflip = bitflip
        self.truncate = truncate
        self.stale = stale
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_bitflips = max_bitflips
        self.max_truncations = max_truncations
        self.max_stales = max_stales
        self.protect = frozenset(protect)
        self.link_scale = dict(link_scale or {})
        self.counts = CorruptionCounts()
        #: Epoch counter, kept in lock-step with the integrity
        #: coordinator's (both advance once per network build) so
        #: delivered-corruption records match rejection records even when
        #: failover runs several networks per logical run.
        self.epoch = -1
        #: Corrupted deliveries created: ``{(sender, receiver,
        #: content_key): mode}`` with mode ``"content"`` (bitflip /
        #: truncate) or ``"stale"`` (replayed authentic content).
        self._corrupt: Dict[Tuple, str] = {}
        #: Content corruptions actually *seen by a receiver*, as
        #: ``(epoch, round, sender, receiver, content_key)`` — the oracle
        #: monitor's ground truth.  Stale replays land in
        #: :attr:`delivered_stales` instead: an accepted replay whose
        #: fresher copy was never accepted is authentic content one round
        #: late — indistinguishable from an honest delay, so it is not
        #: silent corruption.
        self.delivered_corruptions: List[Tuple] = []
        #: Replayed-but-authentic deliveries seen by a receiver.
        self.delivered_stales: List[Tuple] = []
        # Per-link memory of the previous part, for stale replays.
        self._history: Dict[Tuple[int, int], Part] = {}

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "mode:rate[,mode:rate...] with modes bitflip, truncate, stale "
        "and rates in [0, 1] (e.g. 'bitflip:0.02,stale:0.01')"
    )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0, **kwargs) -> "MessageCorruption":
        """Build from a CLI spec like ``bitflip:0.02,truncate:0.01``.

        Modes: ``bitflip``, ``truncate``, ``stale`` with per-copy rates.
        Unknown modes, missing rates, non-numeric rates, and repeated
        modes all raise ``ValueError`` naming the offending token and
        :data:`SPEC_GRAMMAR`.  ``=`` is accepted as a separator alongside
        ``:`` for symmetry with the fault spec grammar.
        """
        modes = ("bitflip", "truncate", "stale")

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad corruption spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        values: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            sep = ":" if ":" in item else "="
            mode, found, raw = item.partition(sep)
            mode = mode.strip()
            if not found:
                raise reject(item, "needs mode:rate")
            if mode not in modes:
                raise reject(item, f"unknown corruption mode {mode!r}")
            if mode in values:
                raise reject(item, f"mode {mode!r} given more than once")
            raw = raw.strip()
            try:
                values[mode] = float(raw)
            except ValueError:
                raise reject(item, f"rate {raw!r} is not a number") from None
        values.update(kwargs)
        return cls(seed=seed, **values)

    def attach(self, network) -> None:
        """Bind to a network; each attach starts a new epoch."""
        super().attach(network)
        self.epoch += 1
        self._history = {}

    def _budget_left(self, used: int, cap: Optional[int]) -> bool:
        return cap is None or used < cap

    def _record(
        self, sender: int, receiver: int, part: Part, mode: str = "content"
    ) -> None:
        key = (sender, receiver, part.content_key)
        # "content" wins a collision: if the same bytes were ever a
        # content corruption, acceptance is never excusable.
        if mode == "content" or key not in self._corrupt:
            self._corrupt[key] = mode

    def corruption_mode(
        self, sender: int, receiver: int, part: Part
    ) -> Optional[str]:
        """How ``part`` on this link was corrupted (``"content"`` /
        ``"stale"``), or None — the recorder annotates bundles with this
        so replays rebuild the same split ground truth."""
        return self._corrupt.get((sender, receiver, part.content_key))

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Maybe corrupt one delivery copy (bitflip, truncate or stale)."""
        link = (sender, receiver)
        previous = self._history.get(link)
        self._history[link] = part
        if sender in self.protect or receiver in self.protect:
            return [(due, part)]
        scale = self.link_scale.get(link, 1.0)
        rng = self.rng
        if (
            self.bitflip
            and self._budget_left(self.counts.bitflips, self.max_bitflips)
            and rng.random() < min(1.0, self.bitflip * scale)
        ):
            flipped = flip_int_leaf(part.payload, rng)
            if flipped is not None:
                self.counts.bitflips += 1
                corrupted = Part(part.kind, flipped, part.bits)
                self._record(sender, receiver, corrupted)
                return [(due, corrupted)]
        if (
            self.truncate
            and isinstance(part.payload, tuple)
            and part.payload
            and self._budget_left(self.counts.truncations, self.max_truncations)
            and rng.random() < min(1.0, self.truncate * scale)
        ):
            self.counts.truncations += 1
            corrupted = Part(part.kind, part.payload[:-1], part.bits)
            self._record(sender, receiver, corrupted)
            return [(due, corrupted)]
        if (
            self.stale
            and previous is not None
            and previous != part
            and self._budget_left(self.counts.stale_replays, self.max_stales)
            and rng.random() < min(1.0, self.stale * scale)
        ):
            self.counts.stale_replays += 1
            self._record(sender, receiver, previous, mode="stale")
            return [(due, previous)]
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Observe (never modify) the inbox: log delivered corruptions."""
        for envelope in envelopes:
            key = (envelope.sender, receiver, envelope.part.content_key)
            mode = self._corrupt.get(key)
            if mode is not None:
                ledger = (
                    self.delivered_corruptions
                    if mode == "content"
                    else self.delivered_stales
                )
                ledger.append(
                    (self.epoch, rnd, envelope.sender, receiver,
                     envelope.part.content_key)
                )
        return envelopes

    def __repr__(self) -> str:
        return (
            f"MessageCorruption(bitflip={self.bitflip}, "
            f"truncate={self.truncate}, stale={self.stale}, seed={self.seed})"
        )


def corruption_sources(injectors) -> List:
    """Injectors (flattening recorder/replay wrappers) that track delivered
    corruptions — anything exposing a ``delivered_corruptions`` list."""
    sources: List = []
    for injector in injectors or ():
        if hasattr(injector, "delivered_corruptions"):
            sources.append(injector)
        inner = getattr(injector, "inner", None)
        if isinstance(inner, (list, tuple)):
            sources.extend(
                i for i in inner if hasattr(i, "delivered_corruptions")
            )
    return sources


#: Gray-failure latency profiles.
GRAY_CONSTANT = "constant"
GRAY_RAMP = "ramp"
GRAY_LIMP = "limp"
GRAY_PROFILES = (GRAY_CONSTANT, GRAY_RAMP, GRAY_LIMP)

#: Period, in rounds, of the intermittent ("limpware") profile: the node
#: alternates ``limp_period`` degraded rounds with ``limp_period`` clean
#: ones inside its interval.
LIMP_PERIOD = 2


@dataclass
class GrayCounts:
    """Tally of injected gray-failure delays, for run reports."""

    stalled_copies: int = 0
    inflated_copies: int = 0
    delay_rounds: int = 0

    @property
    def total(self) -> int:
        """Delivery copies touched by any gray event."""
        return self.stalled_copies + self.inflated_copies

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "stalled_copies": self.stalled_copies,
            "inflated_copies": self.inflated_copies,
            "delay_rounds": self.delay_rounds,
        }


class GrayFailureSchedule(FaultInjector):
    """Gray failures: nodes and links that limp without ever dying.

    The paper's fault model is binary — a node is alive or crashed — but
    real deployments mostly suffer *gray* failures: stragglers, congested
    links, and "limpware" that is slow without being dead.  This injector
    realizes two event classes, both purely *latency* faults (no copy is
    ever lost, reordered or rewritten):

    * **compute stalls** — every delivery *originating* at a stalled node
      while its interval is active is postponed by the profile's delay
      (the node takes extra rounds to produce and push its broadcast);
    * **link inflation** — every delivery crossing a degraded edge (in
      either direction) is postponed likewise.

    Each event carries a ``severity`` — the peak added latency in physical
    rounds — and a deterministic latency ``profile``:

    * ``constant`` — the full ``severity`` for the whole interval;
    * ``ramp`` — degrades linearly from 1 round at interval start up to
      ``severity`` at interval end (a slowly dying disk/NIC);
    * ``limp`` — alternates ``severity`` and 0 in blocks of
      :data:`LIMP_PERIOD` rounds (intermittent "limpware").

    Profiles are pure functions of the broadcast round, so a recorded run
    replays bit-exactly and the schedule doubles as its own **ground-truth
    ledger** (:meth:`degraded_intervals`) for the
    :class:`repro.sim.monitors.StragglerOracle` to grade suspicion
    against.  The schedule is oblivious: every event is fixed before the
    protocol flips any coins.
    """

    modifies_delivery = True

    def __init__(self, stalls=None, links=None) -> None:
        super().__init__()

        def check(label, start, end, severity, profile):
            if start < 1 or end < start:
                raise ValueError(
                    f"gray interval for {label} must satisfy "
                    f"1 <= start <= end (got {start}-{end})"
                )
            if severity < 1:
                raise ValueError(
                    f"gray severity for {label} must be >= 1 rounds, "
                    f"got {severity}"
                )
            if profile not in GRAY_PROFILES:
                raise ValueError(
                    f"unknown gray profile {profile!r} for {label} "
                    f"(expected one of {GRAY_PROFILES})"
                )

        #: Per node: list of ``(start, end, severity, profile)`` sorted by
        #: start round; intervals may not overlap.
        self.stalls: Dict[int, List[Tuple[int, int, int, str]]] = {}
        for node, entries in dict(stalls or {}).items():
            normalized = []
            for entry in entries:
                start, end, severity, profile = (
                    tuple(entry) + (1, GRAY_CONSTANT)
                )[:4]
                check(f"node {node}", start, end, severity, profile)
                normalized.append((start, end, int(severity), profile))
            normalized.sort()
            for (s1, e1, _v1, _p1), (s2, _e2, _v2, _p2) in zip(
                normalized, normalized[1:]
            ):
                if s2 <= e1:
                    raise ValueError(
                        f"node {node} has overlapping stall intervals "
                        f"({s1}-{e1} and starting {s2})"
                    )
            if normalized:
                self.stalls[node] = normalized
        #: Link events as ``(u, v, start, end, severity, profile)`` —
        #: undirected: deliveries in both directions are inflated.
        self.links: List[Tuple[int, int, int, int, int, str]] = []
        for entry in links or ():
            u, v, start, end, severity, profile = (
                tuple(entry) + (1, GRAY_CONSTANT)
            )[:6]
            if u == v:
                raise ValueError(f"cannot degrade self-loop edge {u}-{v}")
            check(f"edge {u}-{v}", start, end, severity, profile)
            self.links.append((u, v, start, end, int(severity), profile))
        self.links.sort()
        self.counts = GrayCounts()

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "comma-separated events: '<node>:stall@r<R1>-r<R2>:x<S>"
        "[:constant|:ramp|:limp]' and 'link:<u>-<v>@r<R1>-r<R2>:x<S>"
        "[:profile]' with rounds >= 1 and severity x<S> >= 1 added "
        "rounds of latency (e.g. '5:stall@r3-r9:x2:ramp,"
        "link:1-2@r2-r8:x1')"
    )

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "GrayFailureSchedule":
        """Build from a CLI spec like
        ``5:stall@r3-r9:x2:ramp,link:1-2@r2-r8:x1``.

        Unknown event kinds, malformed rounds or severities, and unknown
        profiles all raise ``ValueError`` naming the offending token and
        :data:`SPEC_GRAMMAR`.
        """

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad gray spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        def parse_round(raw: str, token: str) -> int:
            raw = raw.strip()
            if raw.startswith("r"):
                raw = raw[1:]
            try:
                value = int(raw)
            except ValueError:
                raise reject(token, f"round {raw!r} is not an integer") from None
            if value < 1:
                raise reject(token, f"round {value} is < 1")
            return value

        def parse_window(raw: str, token: str) -> Tuple[int, int]:
            start_raw, dash, end_raw = raw.partition("-")
            if not dash:
                raise reject(token, "window needs the form r<R1>-r<R2>")
            start = parse_round(start_raw, token)
            end = parse_round(end_raw, token)
            if end < start:
                raise reject(token, f"gray window {start}-{end} is empty")
            return start, end

        def parse_tail(pieces, token) -> Tuple[int, str]:
            if not pieces:
                raise reject(token, "needs a severity :x<S>")
            sev_raw = pieces[0].strip()
            if not sev_raw.startswith("x"):
                raise reject(token, f"severity {sev_raw!r} needs the form x<S>")
            try:
                severity = int(sev_raw[1:])
            except ValueError:
                raise reject(
                    token, f"severity {sev_raw[1:]!r} is not an integer"
                ) from None
            if severity < 1:
                raise reject(token, f"severity {severity} is < 1")
            profile = pieces[1].strip() if len(pieces) > 1 else GRAY_CONSTANT
            if profile not in GRAY_PROFILES:
                raise reject(token, f"unknown gray profile {profile!r}")
            if len(pieces) > 2:
                raise reject(token, "too many ':' fields")
            return severity, profile

        stalls: Dict[int, List[Tuple[int, int, int, str]]] = {}
        links: List[Tuple[int, int, int, int, int, str]] = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if item.startswith("link:"):
                body = item[len("link:"):]
                pieces = body.split(":")
                edge, at, window_raw = pieces[0].partition("@")
                if not at:
                    raise reject(item, "needs link:<u>-<v>@r<R1>-r<R2>:x<S>")
                u_raw, dash, v_raw = edge.partition("-")
                if not dash:
                    raise reject(item, "edge needs the form <u>-<v>")
                try:
                    u, v = int(u_raw), int(v_raw)
                except ValueError:
                    raise reject(item, f"edge {edge!r} is not a node pair") from None
                start, end = parse_window(window_raw, item)
                severity, profile = parse_tail(pieces[1:], item)
                links.append((u, v, start, end, severity, profile))
                continue
            pieces = item.split(":")
            if len(pieces) < 2:
                raise reject(item, "needs <node>:stall@r<R1>-r<R2>:x<S>")
            try:
                node = int(pieces[0])
            except ValueError:
                raise reject(item, f"node {pieces[0]!r} is not an integer") from None
            action, at, window_raw = pieces[1].partition("@")
            if action.strip() != "stall":
                raise reject(item, f"unknown gray event {action.strip()!r}")
            if not at:
                raise reject(item, "event needs @r<R1>-r<R2>")
            start, end = parse_window(window_raw, item)
            severity, profile = parse_tail(pieces[2:], item)
            stalls.setdefault(node, []).append((start, end, severity, profile))
        return cls(stalls=stalls, links=links, **kwargs)

    # -------------------------------------------------------------- #
    # Ledger introspection (the StragglerOracle's ground truth).
    # -------------------------------------------------------------- #

    @property
    def has_events(self) -> bool:
        return bool(self.stalls or self.links)

    def degraded_intervals(self) -> List[Tuple[str, Tuple, int, int, int, str]]:
        """All degraded intervals as
        ``(kind, subject, start, end, severity, profile)`` — kind
        ``"stall"`` with a node subject or ``"link"`` with an edge pair —
        sorted by start round."""
        out: List[Tuple[str, Tuple, int, int, int, str]] = []
        for node, entries in sorted(self.stalls.items()):
            for start, end, severity, profile in entries:
                out.append(("stall", (node,), start, end, severity, profile))
        for u, v, start, end, severity, profile in self.links:
            out.append(("link", (u, v), start, end, severity, profile))
        out.sort(key=lambda e: (e[2], e[0], e[1]))
        return out

    def delay_of(self, sender: int, receiver: int, sent_round: int) -> int:
        """Added latency, in rounds, for a copy broadcast in ``sent_round``.

        A sender stall and a degraded link compound (their delays add);
        the profile is evaluated at the broadcast round, so the delay is a
        pure function of ``(sender, receiver, sent_round)``.
        """
        delay = 0
        for start, end, severity, profile in self.stalls.get(sender, ()):
            if start <= sent_round <= end:
                delay += _profile_delay(
                    profile, severity, sent_round, start, end
                )
        edge = frozenset((sender, receiver))
        for u, v, start, end, severity, profile in self.links:
            if frozenset((u, v)) == edge and start <= sent_round <= end:
                delay += _profile_delay(
                    profile, severity, sent_round, start, end
                )
        return delay

    def stall_active(self, node: int, rnd: int) -> bool:
        """Whether any stall interval has ``node`` degraded in ``rnd``
        (profile-aware: a limp node's clean half-periods count as up)."""
        for start, end, severity, profile in self.stalls.get(node, ()):
            if (
                start <= rnd <= end
                and _profile_delay(profile, severity, rnd, start, end) > 0
            ):
                return True
        return False

    def max_event_round(self) -> int:
        """The last round any gray interval is active (0 when empty)."""
        rounds = [0]
        for entries in self.stalls.values():
            rounds.extend(end for _s, end, _v, _p in entries)
        rounds.extend(end for _u, _v, _s, end, _sev, _p in self.links)
        return max(rounds)

    def max_severity(self) -> int:
        """The worst peak latency across all events (0 when empty)."""
        severities = [0]
        for entries in self.stalls.values():
            severities.extend(sev for _s, _e, sev, _p in entries)
        severities.extend(sev for _u, _v, _s, _e, sev, _p in self.links)
        return max(severities)

    def validate(self, topology) -> None:
        """Reject events naming unknown nodes or nonexistent edges."""
        nodes = set(topology.nodes())
        edges = {frozenset(e) for e in topology.edges()}
        for node in self.stalls:
            if node not in nodes:
                raise ValueError(f"gray schedule names unknown node {node}")
        for u, v, start, end, _sev, _p in self.links:
            if frozenset((u, v)) not in edges:
                raise ValueError(
                    f"gray schedule degrades nonexistent edge {u}-{v} "
                    f"(rounds {start}-{end})"
                )

    # -------------------------------------------------------------- #
    # Serialization (bundle params / WorkUnit specs).
    # -------------------------------------------------------------- #

    def as_jsonable(self) -> Dict:
        """JSON-ready form, round-tripped by :meth:`from_jsonable`."""
        return {
            "stalls": {
                str(node): [list(entry) for entry in entries]
                for node, entries in sorted(self.stalls.items())
            },
            "links": [list(entry) for entry in self.links],
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "GrayFailureSchedule":
        return cls(
            stalls={
                int(node): [tuple(entry) for entry in entries]
                for node, entries in (data.get("stalls") or {}).items()
            },
            links=[tuple(entry) for entry in data.get("links") or ()],
        )

    # -------------------------------------------------------------- #
    # Injector hooks.
    # -------------------------------------------------------------- #

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Postpone one delivery copy by the active events' added latency."""
        sent_round = due - 1
        stall = 0
        for start, end, severity, profile in self.stalls.get(sender, ()):
            if start <= sent_round <= end:
                stall += _profile_delay(
                    profile, severity, sent_round, start, end
                )
        inflation = 0
        edge = frozenset((sender, receiver))
        for u, v, start, end, severity, profile in self.links:
            if frozenset((u, v)) == edge and start <= sent_round <= end:
                inflation += _profile_delay(
                    profile, severity, sent_round, start, end
                )
        if not stall and not inflation:
            return [(due, part)]
        if stall:
            self.counts.stalled_copies += 1
        if inflation:
            self.counts.inflated_copies += 1
        self.counts.delay_rounds += stall + inflation
        return [(due + stall + inflation, part)]

    def __repr__(self) -> str:
        return (
            f"GrayFailureSchedule(stalls={len(self.stalls)} node(s), "
            f"links={len(self.links)} edge(s), "
            f"max_severity={self.max_severity()})"
        )


def _profile_delay(
    profile: str, severity: int, rnd: int, start: int, end: int
) -> int:
    """The profile's added latency at round ``rnd`` of ``[start, end]``."""
    if profile == GRAY_RAMP:
        span = max(1, end - start)
        return 1 + (severity - 1) * (rnd - start) // span
    if profile == GRAY_LIMP:
        return severity if ((rnd - start) // LIMP_PERIOD) % 2 == 0 else 0
    return severity


def random_gray(
    topology,
    rate: float,
    rng: random.Random,
    horizon: int,
    link_rate: Optional[float] = None,
    max_severity: int = 2,
    root: Optional[int] = None,
) -> GrayFailureSchedule:
    """Sample a bounded gray-failure schedule at a per-node stall ``rate``.

    Each non-root node independently stalls with probability ``rate``:
    the interval starts uniformly in ``[2, horizon]``, lasts
    1..``max(1, horizon // 2)`` rounds, with severity 1..``max_severity``
    added rounds and a uniformly drawn profile.  Each edge independently
    degrades with probability ``link_rate`` (defaults to ``rate / 2``).
    The draw order is fixed (sorted nodes, then sorted edges) so schedules
    are reproducible per RNG state.  The root is never stalled (its
    compute path is the certification authority), though its incident
    links may degrade.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"gray rate must be in [0, 1], got {rate}")
    if link_rate is None:
        link_rate = rate / 2
    if not 0.0 <= link_rate <= 1.0:
        raise ValueError(f"gray link rate must be in [0, 1], got {link_rate}")
    if max_severity < 1:
        raise ValueError(f"max_severity must be >= 1, got {max_severity}")
    horizon = max(2, horizon)
    stalls: Dict[int, List[Tuple[int, int, int, str]]] = {}
    for node in sorted(topology.nodes()):
        if root is not None and node == root:
            continue
        if rng.random() >= rate:
            continue
        start = rng.randint(2, horizon)
        length = rng.randint(1, max(1, horizon // 2))
        severity = rng.randint(1, max_severity)
        profile = GRAY_PROFILES[rng.randrange(len(GRAY_PROFILES))]
        stalls[node] = [(start, start + length - 1, severity, profile)]
    links: List[Tuple[int, int, int, int, int, str]] = []
    if link_rate:
        for u, v in sorted(tuple(sorted(e)) for e in topology.edges()):
            if rng.random() >= link_rate:
                continue
            start = rng.randint(2, horizon)
            length = rng.randint(1, max(1, horizon // 2))
            severity = rng.randint(1, max_severity)
            profile = GRAY_PROFILES[rng.randrange(len(GRAY_PROFILES))]
            links.append((u, v, start, start + length - 1, severity, profile))
    return GrayFailureSchedule(stalls=stalls, links=links)


def gray_sources(injectors) -> List:
    """Injectors (flattening recorder/replay wrappers) that carry a
    gray-failure ledger — anything exposing ``degraded_intervals``."""
    sources: List = []
    for injector in injectors or ():
        if hasattr(injector, "degraded_intervals"):
            sources.append(injector)
        inner = getattr(injector, "inner", None)
        if isinstance(inner, (list, tuple)):
            sources.extend(
                i for i in inner if hasattr(i, "degraded_intervals")
            )
    return sources


#: Byzantine node behaviors.
BYZ_EQUIVOCATE = "equivocate"
BYZ_INFLATE = "inflate"
BYZ_DEFLATE = "deflate"
BYZ_REPLAY = "replay"
BYZ_OMIT = "omit"
BYZ_MODES = (BYZ_EQUIVOCATE, BYZ_INFLATE, BYZ_DEFLATE, BYZ_REPLAY, BYZ_OMIT)

#: Wire kinds a Byzantine node lies about: its own sub-aggregate claims.
#: ``aggregation`` carries ``(psum, max_level)`` upstream; ``flooded_psum``
#: carries ``(source, psum)`` during speculative flooding.  A compromised
#: node perturbs only *its own* claims (floods it originates), never
#: content it merely relays — relay tampering is a corruption fault and
#: stays with :class:`MessageCorruption`.
BYZ_TARGET_KINDS = frozenset({"aggregation", "flooded_psum"})


@dataclass
class ByzCounts:
    """Tally of enacted Byzantine perturbations, for run reports."""

    equivocations: int = 0
    inflations: int = 0
    deflations: int = 0
    replays: int = 0
    omissions: int = 0

    @property
    def total(self) -> int:
        """Delivery copies touched by any Byzantine behavior."""
        return (
            self.equivocations
            + self.inflations
            + self.deflations
            + self.replays
            + self.omissions
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "equivocations": self.equivocations,
            "inflations": self.inflations,
            "deflations": self.deflations,
            "replays": self.replays,
            "omissions": self.omissions,
        }


class ByzantineSchedule(FaultInjector):
    """Compromised non-root nodes that lie about their sub-aggregates.

    Every fault model so far keeps nodes *honest*: crashes, churn, gray
    latency and link corruption never make a node sign a false claim.
    This injector compromises selected non-root nodes — each follows one
    deterministic misbehavior from its activation round on:

    * ``equivocate`` — send different sub-aggregates to different
      neighbors: receivers at an odd rank in the sender's sorted
      neighbor list get ``psum + k``, even ranks the true value (two
      authenticated contradictory frames — the classic equivocation);
    * ``inflate`` / ``deflate`` — shift the claimed psum by ``+k`` /
      ``-k`` (clamped at 0) consistently to everyone;
    * ``replay`` — resend the node's *previous* claim of the same kind
      (authentic old content presented as current);
    * ``omit`` — selectively suppress copies to odd-rank neighbors (a
      targeted silence indistinguishable from a crash to the victim).

    The compromised node knows its own signing key: when the integrity
    layer is active (:attr:`integrity` set to the run's
    ``IntegrityConfig``), perturbed inner parts are re-signed with
    :func:`repro.integrity.frames.compute_tag`, so the lie verifies —
    exactly the fault class channel authentication cannot catch.

    Perturbed payloads stay within tuples/ints/strs/``None`` so recorded
    runs replay bit-exactly, and every rewrite preserves the copy's bit
    size (a lie costs the same bits as the truth).  The schedule is its
    own **ground-truth ledger** for grading: :attr:`delivered_taints`
    books every tainted copy a receiver actually saw (equivocation marks
    *all* copies of the split broadcast, so two contradictory delivered
    contents are visible to the oracle), :attr:`omitted` books suppressed
    copies, and :meth:`tainted_nodes` lists compromised nodes that
    actually fired.
    """

    modifies_delivery = True

    def __init__(
        self,
        behaviors=None,
        root: Optional[int] = None,
    ) -> None:
        super().__init__()
        #: Per node: ``(mode, magnitude, start_round)``.
        self.behaviors: Dict[int, Tuple[str, int, int]] = {}
        for node, entry in dict(behaviors or {}).items():
            mode, k, start = (tuple(entry) + (1, 1))[:3]
            if mode not in BYZ_MODES:
                raise ValueError(
                    f"unknown byzantine mode {mode!r} for node {node} "
                    f"(expected one of {BYZ_MODES})"
                )
            if int(k) < 1:
                raise ValueError(
                    f"byzantine magnitude for node {node} must be >= 1, "
                    f"got {k}"
                )
            if int(start) < 1:
                raise ValueError(
                    f"byzantine start round for node {node} must be >= 1, "
                    f"got {start}"
                )
            self.behaviors[int(node)] = (mode, int(k), int(start))
        if root is not None and root in self.behaviors:
            raise ValueError(
                "the root cannot be byzantine: it is the certification "
                "authority of every aggregate (Section 2 trusts the root)"
            )
        #: The run's IntegrityConfig when the integrity layer is active —
        #: set by the runner so perturbed frames are re-signed (a
        #: compromised node holds its own key).  ``None`` outside
        #: integrity runs.
        self.integrity = None
        #: Epoch counter, kept in lock-step with the defense
        #: coordinator's (both advance once per network build) so tainted
        #: deliveries match observations across eviction retries.
        self.epoch = -1
        #: Tainted deliveries a receiver actually saw, as
        #: ``(epoch, round, sender, receiver, content_key)`` — the
        #: ByzantineOracle's ground truth.
        self.delivered_taints: List[Tuple] = []
        #: Copies suppressed by ``omit``, as
        #: ``(epoch, due_round, sender, receiver, content_key)``.
        self.omitted: List[Tuple] = []
        self.counts = ByzCounts()
        #: Rewrites created: ``{(sender, receiver, content_key): mode}``;
        #: the recorder annotates bundles with :meth:`byz_mode` so
        #: replays rebuild the same ground truth.
        self._taint: Dict[Tuple, str] = {}
        # Receiver rank in each sender's sorted neighbor list (equivocate
        # / omit target selection); filled at attach.
        self._rank: Dict[Tuple[int, int], int] = {}
        self._degree: Dict[int, int] = {}
        # Per (sender, kind): last completed claim and the claim of the
        # round currently streaming through on_transmit, for ``replay``.
        self._hist: Dict[Tuple[int, str], Tuple[int, tuple]] = {}
        self._cur: Dict[Tuple[int, str], Tuple[int, tuple]] = {}

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "comma-separated behaviors: '<node>:<mode>[=<k>][@r<R>]' with "
        "modes equivocate, inflate, deflate, replay, omit, magnitude "
        "k >= 1 (default 1) and activation round R >= 1 (default 1) "
        "(e.g. '5:equivocate,7:inflate=4@r3,9:omit')"
    )

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "ByzantineSchedule":
        """Build from a CLI spec like ``5:equivocate,7:inflate=4@r3``.

        Unknown modes, malformed magnitudes or rounds, and nodes given
        more than once all raise ``ValueError`` naming the offending
        token and :data:`SPEC_GRAMMAR`.
        """

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad byzantine spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        behaviors: Dict[int, Tuple[str, int, int]] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            node_raw, sep, body = item.partition(":")
            if not sep:
                raise reject(item, "needs <node>:<mode>")
            try:
                node = int(node_raw)
            except ValueError:
                raise reject(item, f"node {node_raw!r} is not an integer") from None
            if node in behaviors:
                raise reject(item, f"node {node} given more than once")
            body, at, round_raw = body.partition("@")
            start = 1
            if at:
                round_raw = round_raw.strip()
                if round_raw.startswith("r"):
                    round_raw = round_raw[1:]
                try:
                    start = int(round_raw)
                except ValueError:
                    raise reject(
                        item, f"round {round_raw!r} is not an integer"
                    ) from None
                if start < 1:
                    raise reject(item, f"round {start} is < 1")
            mode, eq, k_raw = body.partition("=")
            mode = mode.strip()
            if mode not in BYZ_MODES:
                raise reject(item, f"unknown byzantine mode {mode!r}")
            k = 1
            if eq:
                try:
                    k = int(k_raw.strip())
                except ValueError:
                    raise reject(
                        item, f"magnitude {k_raw.strip()!r} is not an integer"
                    ) from None
                if k < 1:
                    raise reject(item, f"magnitude {k} is < 1")
            behaviors[node] = (mode, k, start)
        return cls(behaviors=behaviors, **kwargs)

    # -------------------------------------------------------------- #
    # Introspection (the ByzantineOracle's ground truth).
    # -------------------------------------------------------------- #

    @property
    def has_events(self) -> bool:
        return bool(self.behaviors)

    @property
    def budget(self) -> int:
        """The declared adversary budget b: number of compromised nodes."""
        return len(self.behaviors)

    def byz_nodes(self) -> List[int]:
        """Compromised node ids, sorted."""
        return sorted(self.behaviors)

    def tainted_nodes(self) -> List[int]:
        """Compromised nodes that actually delivered a taint or omitted a
        copy this run, sorted."""
        nodes = {entry[2] for entry in self.delivered_taints}
        nodes.update(entry[2] for entry in self.omitted)
        return sorted(nodes)

    def byz_mode(
        self, sender: int, receiver: int, part: Part
    ) -> Optional[str]:
        """How ``part`` on this link was tainted (one of
        :data:`BYZ_MODES`), or None — the recorder annotates bundles with
        this so replays rebuild the same ground truth."""
        return self._taint.get((sender, receiver, part.content_key))

    def max_event_round(self) -> int:
        """The latest activation round (behaviors stay active forever)."""
        return max(
            (start for _m, _k, start in self.behaviors.values()), default=0
        )

    def validate(self, topology) -> None:
        """Reject behaviors naming unknown nodes or the root.

        The root is the output: a compromised root could report anything
        and no witness protocol over its *inputs* could tell — Section 2
        protects it, and so does every defended run.
        """
        nodes = set(topology.nodes())
        for node in self.behaviors:
            if node not in nodes:
                raise ValueError(
                    f"byzantine schedule names unknown node {node}"
                )
            if node == topology.root:
                raise ValueError(
                    f"byzantine schedule compromises the root {node}: the "
                    "model (and the witness defense) assume an honest root"
                )

    # -------------------------------------------------------------- #
    # Serialization (bundle params / WorkUnit specs).
    # -------------------------------------------------------------- #

    def as_jsonable(self) -> Dict:
        """JSON-ready form, round-tripped by :meth:`from_jsonable`."""
        return {
            "behaviors": {
                str(node): list(entry)
                for node, entry in sorted(self.behaviors.items())
            },
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "ByzantineSchedule":
        return cls(
            behaviors={
                int(node): tuple(entry)
                for node, entry in (data.get("behaviors") or {}).items()
            },
        )

    # -------------------------------------------------------------- #
    # Injector hooks.
    # -------------------------------------------------------------- #

    def attach(self, network) -> None:
        """Bind to a network; each attach starts a new epoch."""
        super().attach(network)
        if network.root is not None and network.root in self.behaviors:
            raise ValueError(
                "the root cannot be byzantine: it is the certification "
                "authority of every aggregate (Section 2 trusts the root)"
            )
        self.epoch += 1
        self._rank = {}
        self._degree = {}
        for sender, neighbours in network.adjacency.items():
            ordered = sorted(neighbours)
            self._degree[sender] = len(ordered)
            for rank, receiver in enumerate(ordered):
                self._rank[(sender, receiver)] = rank
        self._hist = {}
        self._cur = {}

    def _remember(self, sender: int, kind: str, sent_round: int, payload):
        """Track the sender's previous claim of ``kind`` for ``replay``.

        ``on_transmit`` runs once per neighbor copy of the same
        broadcast; copies of the current round must not shadow the
        previous round's claim, so promotion happens only when a newer
        round streams through.  Returns the previous completed claim.
        """
        key = (sender, kind)
        current = self._cur.get(key)
        if current is not None and current[0] < sent_round:
            self._hist[key] = current
            current = None
        if current is None:
            self._cur[key] = (sent_round, payload)
        previous = self._hist.get(key)
        return previous[1] if previous is not None else None

    def _reframe(self, part: Part, inner_parts: List[Part]) -> Part:
        """Re-sign a rewritten integrity frame (the node holds its key)."""
        from ..integrity.frames import compute_tag

        seq, claimed_sender, _inner, _tag = part.payload
        inner = tuple((p.kind, p.payload, p.bits) for p in inner_parts)
        tag = compute_tag(self.integrity, claimed_sender, seq, inner)
        return Part(part.kind, (seq, claimed_sender, inner, tag), part.bits)

    def _perturb_claim(
        self,
        sender: int,
        receiver: int,
        sent_round: int,
        part: Part,
    ) -> Tuple[Optional[Part], Optional[str]]:
        """Rewrite one claim part per the sender's behavior.

        Returns ``(rewritten_part, mode)``; ``(None, "omit")`` suppresses
        the copy, ``(part, None)`` passes it through untouched.
        """
        mode, k, start = self.behaviors[sender]
        if sent_round < start:
            return part, None
        if part.kind == "flooded_psum" and part.payload[0] != sender:
            return part, None  # relayed content: never tampered
        rank = self._rank.get((sender, receiver), 0)
        if mode == BYZ_OMIT:
            if self._degree.get(sender, 0) < 2 or rank % 2 == 0:
                return part, None
            self.counts.omissions += 1
            return None, BYZ_OMIT
        if part.kind == "aggregation":
            psum, max_level = part.payload
            rebuild = lambda v: (v, max_level)  # noqa: E731
        else:
            source, psum = part.payload
            rebuild = lambda v: (source, v)  # noqa: E731
        previous = self._remember(sender, part.kind, sent_round, part.payload)
        if mode == BYZ_EQUIVOCATE:
            if self._degree.get(sender, 0) < 2:
                return part, None
            # Odd ranks get the lie, even ranks the truth; every copy of
            # the split broadcast is tainted so the ledger shows both
            # contradictory delivered contents.
            self.counts.equivocations += 1
            if rank % 2 == 1:
                return Part(part.kind, rebuild(psum + k), part.bits), mode
            return part, mode
        if mode == BYZ_INFLATE:
            self.counts.inflations += 1
            return Part(part.kind, rebuild(psum + k), part.bits), mode
        if mode == BYZ_DEFLATE:
            self.counts.deflations += 1
            return Part(part.kind, rebuild(max(0, psum - k)), part.bits), mode
        # BYZ_REPLAY: resend the previous claim of this kind, if any.
        if previous is None or previous == part.payload:
            return part, None
        self.counts.replays += 1
        return Part(part.kind, previous, part.bits), mode

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Maybe rewrite (or suppress) one delivery copy of a claim."""
        if sender not in self.behaviors:
            return [(due, part)]
        sent_round = due - 1
        if part.kind in BYZ_TARGET_KINDS:
            rewritten, mode = self._perturb_claim(
                sender, receiver, sent_round, part
            )
            if mode is None:
                return [(due, part)]
            if rewritten is None:
                self.omitted.append(
                    (self.epoch, due, sender, receiver, part.content_key)
                )
                return []
            self._taint[(sender, receiver, rewritten.content_key)] = mode
            return [(due, rewritten)]
        if part.kind == "integ_frame" and self.integrity is not None:
            try:
                seq, claimed_sender, inner, _tag = part.payload
            except (TypeError, ValueError):
                return [(due, part)]
            if claimed_sender != sender:
                return [(due, part)]
            changed = False
            suppressed = False
            new_inner: List[Part] = []
            for kind, payload, bits in inner:
                inner_part = Part(kind, payload, bits)
                if kind not in BYZ_TARGET_KINDS:
                    new_inner.append(inner_part)
                    continue
                rewritten, mode = self._perturb_claim(
                    sender, receiver, sent_round, inner_part
                )
                if mode is None:
                    new_inner.append(inner_part)
                    continue
                if rewritten is None:
                    suppressed = True
                    self.omitted.append(
                        (self.epoch, due, sender, receiver,
                         inner_part.content_key)
                    )
                    continue
                new_inner.append(rewritten)
                changed_mode = mode
                changed = True
            if not changed and not suppressed:
                return [(due, part)]
            reframed = self._reframe(part, new_inner)
            if changed:
                self._taint[(sender, receiver, reframed.content_key)] = (
                    changed_mode
                )
            return [(due, reframed)]
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Observe (never modify) the inbox: log delivered taints."""
        for envelope in envelopes:
            key = (envelope.sender, receiver, envelope.part.content_key)
            if key in self._taint:
                self.delivered_taints.append(
                    (self.epoch, rnd, envelope.sender, receiver,
                     envelope.part.content_key)
                )
        return envelopes

    def __repr__(self) -> str:
        return (
            f"ByzantineSchedule(b={self.budget}, "
            f"behaviors={sorted(self.behaviors.items())})"
        )


def random_byz(
    topology,
    rate: float,
    rng: random.Random,
    horizon: int,
    root: Optional[int] = None,
    max_magnitude: int = 3,
) -> ByzantineSchedule:
    """Sample a bounded Byzantine schedule at a per-node compromise ``rate``.

    Each non-root node is independently compromised with probability
    ``rate``: the mode is drawn uniformly from :data:`BYZ_MODES`, the
    magnitude from 1..``max_magnitude``, and the activation round from
    ``[1, max(1, horizon // 2)]``.  The draw order is fixed (sorted
    nodes) so schedules are reproducible per RNG state.  The root is
    never compromised (it is the certification authority).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"byzantine rate must be in [0, 1], got {rate}")
    if max_magnitude < 1:
        raise ValueError(f"max_magnitude must be >= 1, got {max_magnitude}")
    horizon = max(2, horizon)
    behaviors: Dict[int, Tuple[str, int, int]] = {}
    for node in sorted(topology.nodes()):
        if root is not None and node == root:
            continue
        if rng.random() >= rate:
            continue
        mode = BYZ_MODES[rng.randrange(len(BYZ_MODES))]
        k = rng.randint(1, max_magnitude)
        start = rng.randint(1, max(1, horizon // 2))
        behaviors[node] = (mode, k, start)
    return ByzantineSchedule(behaviors=behaviors, root=root)


def byz_sources(injectors) -> List:
    """Injectors (flattening recorder/replay wrappers) that carry a
    Byzantine taint ledger — anything exposing ``delivered_taints``."""
    sources: List = []
    for injector in injectors or ():
        if hasattr(injector, "delivered_taints"):
            sources.append(injector)
        inner = getattr(injector, "inner", None)
        if isinstance(inner, (list, tuple)):
            sources.extend(
                i for i in inner if hasattr(i, "delivered_taints")
            )
    return sources
