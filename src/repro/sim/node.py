"""Node handler interface for protocols running on the simulator.

A protocol is implemented as one :class:`NodeHandler` per node.  Each round
the network calls :meth:`NodeHandler.on_round` with the messages delivered in
that round; the handler returns the parts to broadcast (delivered to all live
neighbours next round).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence

from .message import Envelope, Part


class NodeHandler(ABC):
    """Per-node protocol logic driven by the synchronous round loop."""

    @abstractmethod
    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> Iterable[Part]:
        """Process one round.

        Args:
            rnd: The absolute 1-based round number.  ``inbox`` contains
                everything the node's neighbours broadcast in round
                ``rnd - 1``.
            inbox: Envelopes delivered this round.

        Returns:
            Parts to broadcast this round (empty iterable to stay silent).
        """

    def wants_to_stop(self) -> bool:
        """Whether this node (typically the root) has produced final output.

        The network stops the run as soon as any handler reports ``True``
        after a round — this models the paper's "the root ... outputs its
        result and terminates".
        """
        return False


class SilentNode(NodeHandler):
    """A node that never sends anything (useful in tests and as filler)."""

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        return []


class RelayNode(NodeHandler):
    """A node that re-broadcasts every distinct part it receives once.

    Used in tests of the delivery semantics and as the simplest possible
    flooding participant.
    """

    def __init__(self) -> None:
        self._seen = set()
        self.received: List[Envelope] = []

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        out: List[Part] = []
        for env in inbox:
            self.received.append(env)
            key = env.part.content_key
            if key not in self._seen:
                self._seen.add(key)
                out.append(env.part)
        return out
