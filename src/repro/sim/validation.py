"""Model-assumption validation (Section 2, made checkable).

The paper's guarantees hold under specific assumptions; silently violating
one produces confusing "bugs".  :func:`validate_model` checks an
experiment configuration against every assumption and returns a list of
:class:`Violation` diagnostics (empty = clean), so harnesses can run
``strict`` and fail fast with a precise message instead of a wrong sum.

Checked assumptions:

* ``connected``   — the topology is connected (required by the model);
* ``root-safe``   — the root never crashes;
* ``f-budget``    — edge failures stay within the declared ``f``;
* ``c-stretch``   — the surviving diameter never exceeds ``c * d``;
* ``input-domain``— inputs are non-negative and polynomial in ``N``;
* ``b-feasible``  — Algorithm 1's ``b >= 21c`` precondition;
* ``known-nodes`` — the schedule only names real nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graphs.topology import Topology


@dataclass(frozen=True)
class Violation:
    """One broken model assumption."""

    rule: str
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


def validate_model(
    topology: Topology,
    inputs: Optional[Dict[int, int]] = None,
    schedule=None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    input_degree: int = 3,
    allow_root_crash: bool = False,
) -> List[Violation]:
    """Check a configuration against the Section 2 assumptions.

    ``input_degree`` bounds the polynomial input domain: inputs must stay
    within ``N ** input_degree``.  ``allow_root_crash`` skips the
    root-safety check (the :mod:`repro.resilience` failover opt-in).
    """
    violations: List[Violation] = []

    # Topology construction already guarantees connectivity, but re-check
    # defensively (the object may have been mutated).
    from ..graphs.properties import is_connected

    if not is_connected(topology.adjacency):
        violations.append(
            Violation("connected", "topology is not connected")
        )

    if schedule is not None:
        if topology.root in schedule.failed_nodes and not allow_root_crash:
            violations.append(
                Violation(
                    "root-safe",
                    f"the root (node {topology.root}) is scheduled to crash",
                )
            )
        unknown = schedule.failed_nodes - set(topology.adjacency)
        if unknown:
            violations.append(
                Violation(
                    "known-nodes",
                    f"schedule names nodes outside the graph: {sorted(unknown)}",
                )
            )
        if f is not None:
            used = topology.edges_incident(
                schedule.failed_nodes & set(topology.adjacency)
            )
            if used > f:
                violations.append(
                    Violation(
                        "f-budget",
                        f"schedule induces {used} edge failures "
                        f"(declared budget f={f})",
                    )
                )
        if not unknown and topology.root not in schedule.failed_nodes:
            if not schedule.respects_c_constraint(topology, c):
                violations.append(
                    Violation(
                        "c-stretch",
                        f"failures stretch the surviving diameter past "
                        f"c*d = {c * topology.diameter}",
                    )
                )

    if inputs is not None:
        missing = set(topology.adjacency) - set(inputs)
        if missing:
            violations.append(
                Violation(
                    "input-domain",
                    f"nodes without inputs: {sorted(missing)[:5]}...",
                )
            )
        limit = topology.n_nodes**input_degree
        for node, value in inputs.items():
            if value < 0:
                violations.append(
                    Violation(
                        "input-domain",
                        f"node {node} has a negative input ({value})",
                    )
                )
                break
            if value > limit:
                violations.append(
                    Violation(
                        "input-domain",
                        f"node {node}'s input {value} exceeds the polynomial "
                        f"domain N^{input_degree} = {limit}",
                    )
                )
                break

    if b is not None and b < 21 * c:
        violations.append(
            Violation(
                "b-feasible",
                f"Algorithm 1 requires b >= 21c = {21 * c}, got b={b}",
            )
        )

    return violations


def assert_model(
    topology: Topology,
    inputs: Optional[Dict[int, int]] = None,
    schedule=None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    allow_root_crash: bool = False,
) -> None:
    """Raise ValueError with all diagnostics if any assumption is broken."""
    violations = validate_model(
        topology,
        inputs=inputs,
        schedule=schedule,
        f=f,
        b=b,
        c=c,
        allow_root_crash=allow_root_crash,
    )
    if violations:
        details = "\n  ".join(str(v) for v in violations)
        raise ValueError(f"model assumptions violated:\n  {details}")
