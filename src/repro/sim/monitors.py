"""Runtime invariant monitors for simulator executions.

:mod:`repro.sim.validation` checks a configuration *before* a run; the
monitors here watch invariants *during* and *after* one, which is what
catches out-of-model behaviour introduced by the chaos layer
(:mod:`repro.sim.faults`) or by adaptive adversaries:

* :class:`RootSafetyMonitor` — the root is never dead (Section 2).
* :class:`FBudgetMonitor` — cumulative edge failures stay within ``f``.
* :class:`CCEnvelopeMonitor` — the bottleneck node's bits stay under a
  declared envelope (e.g. :func:`theorem1_cc_envelope` for Algorithm 1).
* :class:`OracleMonitor` — zero-error on termination: if the root handler
  exposes a ``result``, it must lie in the Section 2 correctness interval
  ``[agg(s1), agg(s2)]``.
* :class:`CorruptionOracleMonitor` — no silent corruption: every
  corrupted part the injector delivered must show up in the integrity
  layer's rejection log.

Every monitor runs in one of two modes: ``strict`` raises
:class:`InvariantViolation` at the moment the invariant breaks, ``record``
accumulates :class:`MonitorEvent` diagnostics for post-run inspection.
Attach via ``Network(..., monitors=[...])``; :meth:`Network.run` calls
``after_round`` each round and ``finalize`` once at the end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

MODES = ("strict", "record")


class InvariantViolation(RuntimeError):
    """A runtime invariant broke during a simulated execution.

    Attributes:
        rule: Short invariant name (``"root-safe"``, ``"f-budget"``, ...).
        round: Round in which the violation was detected (None: at
            finalization).
    """

    def __init__(self, rule: str, message: str, rnd: Optional[int] = None):
        self.rule = rule
        self.round = rnd
        at = f" (round {rnd})" if rnd is not None else ""
        super().__init__(f"[{rule}]{at} {message}")


@dataclass(frozen=True)
class MonitorEvent:
    """One recorded invariant violation."""

    rule: str
    round: Optional[int]
    message: str

    def __str__(self) -> str:
        at = f"@r{self.round}" if self.round is not None else ""
        return f"[{self.rule}{at}] {self.message}"


class Monitor:
    """Base runtime monitor.

    Subclasses implement :meth:`after_round` and/or :meth:`finalize` and
    call :meth:`report` when their invariant breaks.
    """

    rule = "invariant"

    def __init__(self, mode: str = "strict") -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.violations: List[MonitorEvent] = []

    def attach(self, network) -> None:
        """Bind to a network; called from ``Network.__init__``."""

    def after_round(self, network) -> None:
        """Check the invariant after one executed round."""

    def finalize(self, network) -> None:
        """Check end-of-run invariants; called once by ``Network.run``."""

    def report(self, message: str, rnd: Optional[int] = None) -> None:
        """Record a violation; raise immediately in strict mode."""
        self.violations.append(MonitorEvent(self.rule, rnd, message))
        if self.mode == "strict":
            raise InvariantViolation(self.rule, message, rnd)

    @property
    def ok(self) -> bool:
        """Whether no violation has been observed."""
        return not self.violations


class RootSafetyMonitor(Monitor):
    """Section 2: all nodes *except the root* may crash."""

    rule = "root-safe"

    def __init__(self, root: int, mode: str = "strict") -> None:
        super().__init__(mode)
        self.root = root
        self._tripped = False

    def after_round(self, network) -> None:
        """Report once, in the first round the root is dead."""
        if self._tripped or network.is_alive(self.root):
            return
        self._tripped = True
        self.report(f"the root (node {self.root}) is dead", network.round)


class FBudgetMonitor(Monitor):
    """Edge-failure *events* must stay within ``f``.

    Section 2 charges the adversary per edge failure.  Under crash-stop
    every edge fails at most once, so counting distinct edges with a
    crashed endpoint was equivalent; under crash-recovery churn the same
    edge can go down, come back, and go down again — each down-transition
    is a separate edge-failure event and must be charged against ``f``
    separately (the paper's edge-failure-event semantics).  An edge is
    down while either endpoint is dead or the link itself is flapped
    (:meth:`repro.sim.network.Network.link_up`); the monitor tracks
    per-edge up/down state each round and accumulates transitions.  For
    pure crash-stop schedules the count equals the historical
    ``edges_incident(failed)`` recount.
    """

    rule = "f-budget"

    def __init__(self, topology, f: int, mode: str = "strict") -> None:
        super().__init__(mode)
        self.topology = topology
        self.f = f
        #: Cumulative edge-failure events (down-transitions) observed.
        self.events_used = 0
        self._edge_down: Dict[tuple, bool] = {}
        self._tripped = False

    @staticmethod
    def _is_down(network, u: int, v: int, rnd: int) -> bool:
        if not network.is_alive(u, rnd) or not network.is_alive(v, rnd):
            return True
        link_up = getattr(network, "link_up", None)
        return link_up is not None and not link_up(u, v, rnd)

    def after_round(self, network) -> None:
        """Charge every up->down edge transition against the budget."""
        if self._tripped:
            return
        rnd = network.round
        known = network.adjacency
        charged = False
        for u, v in self.topology.edges():
            if u not in known or v not in known:
                continue
            key = (u, v) if u < v else (v, u)
            down = self._is_down(network, u, v, rnd)
            if down and not self._edge_down.get(key, False):
                self.events_used += 1
                charged = True
            self._edge_down[key] = down
        if charged and self.events_used > self.f:
            self._tripped = True
            self.report(
                f"{self.events_used} edge-failure events exceed the "
                f"budget f={self.f}",
                rnd,
            )


class CCEnvelopeMonitor(Monitor):
    """The bottleneck node's bit count must stay under an envelope."""

    rule = "cc-envelope"

    def __init__(self, bound_bits: float, mode: str = "strict") -> None:
        super().__init__(mode)
        if bound_bits <= 0:
            raise ValueError(f"bound_bits must be positive, got {bound_bits}")
        self.bound_bits = bound_bits
        self._tripped = False

    def after_round(self, network) -> None:
        """Compare the running per-node maximum against the envelope."""
        if self._tripped:
            return
        worst = network.stats.max_bits
        if worst > self.bound_bits:
            self._tripped = True
            node = max(
                network.stats.bits_sent, key=network.stats.bits_sent.get
            )
            self.report(
                f"node {node} sent {worst} bits, envelope is "
                f"{self.bound_bits:.0f}",
                network.round,
            )


class OracleMonitor(Monitor):
    """Zero-error on termination, per the Section 2 correctness oracle.

    At finalization, if the root's handler exposes a non-``None``
    ``result`` attribute, it must lie in ``[agg(s1), agg(s2)]`` where
    ``s1`` are the inputs of nodes still connected to the root through
    live nodes and ``s2`` all inputs.  A ``None`` result (no output /
    explicit abort) is *not* a violation — aborting is the honest way for
    a protocol to fail under out-of-model faults.
    """

    rule = "oracle"

    def __init__(
        self,
        topology,
        inputs: Dict[int, int],
        caaf=None,
        mode: str = "strict",
    ) -> None:
        super().__init__(mode)
        self.topology = topology
        self.inputs = dict(inputs)
        self.caaf = caaf

    def finalize(self, network) -> None:
        """Grade the root's result against the correctness interval."""
        handler = network.handlers.get(self.topology.root)
        result = getattr(handler, "result", None)
        if result is None:
            return
        # Imported lazily: repro.core imports repro.sim at package load.
        from ..core.caaf import SUM
        from ..core.correctness import correctness_interval

        caaf = self.caaf or SUM
        failed = {
            u for u, r in network.crash_rounds.items() if r <= network.round
        }
        survivors = self.topology.alive_component(failed)
        lo, hi = correctness_interval(caaf, self.inputs, survivors)
        if not lo <= result <= hi:
            self.report(
                f"root output {result} outside the correctness interval "
                f"[{lo}, {hi}] ({len(survivors)}/{self.topology.n_nodes} "
                f"survivors)",
                network.round,
            )


class RecoverySafetyMonitor(Monitor):
    """Root-crash discipline for recovery-enabled runs.

    Replaces :class:`RootSafetyMonitor` when ``allow_root_crash`` is on:
    the root dying is then a *sanctioned* out-of-model event, so it is
    recorded as a diagnostic in every mode (never raised — that is the
    point of enabling failover), keeping recovered runs flagged for
    forensic capture.  What does still :meth:`report` is a dead root that
    exposes an output: a crashed node must stay silent, so a non-``None``
    ``result`` on the dead root's handler means the recovery layer leaked
    state across the crash.
    """

    rule = "recovery-safe"

    def __init__(self, root: int, mode: str = "strict") -> None:
        super().__init__(mode)
        self.root = root
        self.crash_round: Optional[int] = None

    def after_round(self, network) -> None:
        """Note (once) the round the root died; never raises for it."""
        if self.crash_round is not None or network.is_alive(self.root):
            return
        self.crash_round = network.round
        self.violations.append(
            MonitorEvent(
                self.rule,
                network.round,
                f"the root (node {self.root}) crashed; failover engaged",
            )
        )

    def finalize(self, network) -> None:
        """A dead root must have stayed silent: no output may survive it."""
        if self.crash_round is None:
            return
        handler = network.handlers.get(self.root)
        result = getattr(handler, "result", None)
        if result is not None:
            self.report(
                f"dead root (node {self.root}) still exposes output "
                f"{result}",
            )


class CorruptionOracleMonitor(Monitor):
    """Silent-corruption oracle: every delivered corruption must be caught.

    ``sources`` are injectors exposing ``delivered_corruptions`` — the
    ground-truth ledger of corrupted parts that actually reached an inbox
    (:class:`repro.sim.faults.MessageCorruption`, or the replay injector
    reproducing a recorded corrupted run).  ``coordinator`` is the
    :class:`repro.integrity.frames.IntegrityCoordinator` whose rejection
    log is the defence's account of what it caught.  At finalization any
    delivered corruption without a matching rejection is a
    **silent corruption**: the protocol consumed corrupted bits without
    noticing, the exact failure mode the integrity layer exists to
    prevent.  With no coordinator (``--integrity off``) every delivered
    corruption is silent by definition — the monitor then documents the
    exposure rather than guarding a guarantee.

    ``finalize`` may run once per epoch under failover; already-reported
    keys are skipped so each silent corruption is reported exactly once.
    """

    rule = "silent-corruption"

    def __init__(self, sources, coordinator=None, mode: str = "strict") -> None:
        super().__init__(mode)
        self.sources = list(sources)
        self.coordinator = coordinator
        self._reported: set = set()

    def finalize(self, network) -> None:
        """Match delivered corruptions against integrity rejections."""
        # Imported lazily: repro.sim must not import repro.integrity at
        # module scope (integrity builds on sim).
        from ..integrity.frames import unresolved_corruptions

        for key in unresolved_corruptions(self.sources, self.coordinator):
            if key in self._reported:
                continue
            self._reported.add(key)
            epoch, rnd, sender, receiver, content_key = key
            self.report(
                f"corrupted part {content_key[0]!r} delivered on link "
                f"{sender}->{receiver} (epoch {epoch}, round {rnd}) was "
                "never rejected by the integrity layer",
                rnd,
            )


class DoubleCountOracle(Monitor):
    """Exactly-once contribution accounting under churn.

    The churn epoch manager (:mod:`repro.resilience.epochs`) books every
    leaf contribution under a ``(node_id, incarnation)`` nonce so a
    rejoined node is never double-counted and never dropped while any
    copy of its contribution survives.  This oracle compares the
    *certified claim* against the ground-truth input multiset and reports
    under two rules:

    * ``double-count`` — the certified value exceeds (or, for
      non-monotone aggregates, differs from) the aggregate over the
      claimed coverage, a node was booked under two incarnations, or a
      booked value differs from the node's true input;
    * ``lost-contribution`` — a contribution is missing from the
      certified coverage although a copy survived (the node rejoined
      durable, or a live neighbour still held its anti-entropy snapshot).

    An *uncertified* partial result is graded by neither rule — declining
    to certify is the honest outcome when churn outran the budget.  The
    epoch manager feeds the oracle through :meth:`grade_ledger` and
    :meth:`grade_final`; per-network hooks are no-ops.
    """

    rule = "exactly-once"

    def __init__(
        self, inputs: Dict[int, int], caaf=None, mode: str = "strict"
    ) -> None:
        super().__init__(mode)
        self.inputs = dict(inputs)
        self.caaf = caaf
        #: Count of double-count violations reported.
        self.double_counts = 0
        #: Count of lost-contribution violations reported.
        self.lost_contributions = 0

    def report_as(
        self, rule: str, message: str, rnd: Optional[int] = None
    ) -> None:
        """Like :meth:`Monitor.report` but under a per-event rule."""
        self.violations.append(MonitorEvent(rule, rnd, message))
        if self.mode == "strict":
            raise InvariantViolation(rule, message, rnd)

    def grade_ledger(self, entries, double_booked=()) -> None:
        """Audit booked nonces: one per node, each with its true value."""
        for node, incarnation, value in double_booked:
            self.double_counts += 1
            self.report_as(
                "double-count",
                f"node {node} booked a second contribution under "
                f"incarnation {incarnation} (value {value}): nonce dedup "
                "failed",
            )
        # Imported lazily: repro.core imports repro.sim at package load.
        from ..core.caaf import SUM

        caaf = self.caaf or SUM
        for node, incarnation, value in entries:
            true_input = self.inputs.get(node)
            if true_input is None:
                continue
            expected = caaf.prepare(true_input)
            if value != expected:
                self.double_counts += 1
                self.report_as(
                    "double-count",
                    f"node {node} (incarnation {incarnation}) booked "
                    f"value {value}, but its true contribution is "
                    f"{expected}",
                )

    def grade_final(
        self,
        value: Optional[int],
        coverage,
        certified: bool,
        recoverable=(),
    ) -> None:
        """Grade the final certified claim against the ground truth.

        ``recoverable`` names nodes whose contribution provably had a
        surviving copy at the end of the run; a certified coverage that
        excludes one of them lost a contribution it could have kept.
        """
        if value is None or not certified:
            return
        from ..core.caaf import SUM

        caaf = self.caaf or SUM
        coverage = set(coverage)
        expected = caaf.aggregate_inputs(
            self.inputs[u] for u in sorted(coverage) if u in self.inputs
        )
        if value != expected:
            if caaf is not None and caaf.monotone and value < expected:
                self.lost_contributions += 1
                self.report_as(
                    "lost-contribution",
                    f"certified value {value} falls short of the "
                    f"aggregate {expected} over its claimed coverage "
                    f"({len(coverage)} nodes)",
                )
            else:
                self.double_counts += 1
                self.report_as(
                    "double-count",
                    f"certified value {value} != aggregate {expected} "
                    f"over its claimed coverage ({len(coverage)} nodes): "
                    "a contribution was double-counted or mis-booked",
                )
        for node in sorted(set(recoverable) - coverage):
            self.lost_contributions += 1
            self.report_as(
                "lost-contribution",
                f"node {node}'s contribution had a surviving copy but "
                "is missing from the certified coverage",
            )


class StragglerOracle(Monitor):
    """Gray-failure detection quality, graded against the fault ledger.

    The :class:`repro.sim.faults.GrayFailureSchedule` knows exactly which
    nodes/links were degraded and when; the transport's φ-accrual
    detector only sees frame inter-arrival times.  This oracle compares
    the two and reports under two rules:

    * ``false-suspect`` — an observer *confirmed* suspicion of a peer
      that was alive at that round.  Gray-degraded nodes are slow, not
      dead; evicting one turns a latency wobble into a lost contribution,
      which is precisely the failure mode graded detection must prevent.
    * ``unbounded-stall`` — a ledger interval severe enough to stretch
      delivery past the transport's window cap (``severity >= the
      detection bound``) and long enough that suspicion *must* have
      accrued (at least three windows), yet no observer ever raised even
      ``suspect`` on the affected node.  Silent unbounded stretch is the
      gray failure the paper's binary fault model cannot see.

    False suspicions are graded at each network's ``finalize`` (liveness
    is only known there); missed degradations are graded once, by the
    runner, after the whole run via :meth:`grade_final` — mid-run the
    detector may simply not have accrued yet.
    """

    rule = "straggler"

    def __init__(
        self,
        gray,
        transport=None,
        mode: str = "strict",
        stretch_limit: Optional[int] = None,
    ) -> None:
        super().__init__(mode)
        self.gray = gray
        self.transport = transport
        #: Severity at/above which an undetected interval is a miss;
        #: defaults to the transport window (what windowing can absorb).
        self.stretch_limit = stretch_limit
        self.false_suspects = 0
        self.missed_degradations = 0
        self._false_reported: set = set()
        self._missed_reported: set = set()

    def report_as(
        self, rule: str, message: str, rnd: Optional[int] = None
    ) -> None:
        """Like :meth:`Monitor.report` but under a per-event rule."""
        self.violations.append(MonitorEvent(rule, rnd, message))
        if self.mode == "strict":
            raise InvariantViolation(rule, message, rnd)

    def _detector(self):
        return getattr(self.transport, "detector", None)

    def finalize(self, network) -> None:
        detector = self._detector()
        if detector is None:
            return
        for e in detector.events:
            if e.level != "confirm":
                continue
            key = (e.observer, e.peer)
            if key in self._false_reported:
                continue
            if network.is_alive(e.peer, e.round):
                self._false_reported.add(key)
                self.false_suspects += 1
                self.report_as(
                    "false-suspect",
                    f"node {e.observer} confirmed suspicion of node "
                    f"{e.peer} (phi={e.phi:.1f}) although it was alive: "
                    "a straggler was evicted",
                    e.round,
                )

    def grade_final(self) -> None:
        """Grade missed degradations; the runner calls this once at the end."""
        detector = self._detector()
        if detector is None or self.gray is None:
            return
        limit = self.stretch_limit
        if limit is None:
            limit = (
                self.transport.config.window
                if self.transport is not None
                else None
            )
        if limit is None:
            return
        suspected = {e.peer for e in detector.events}
        for kind, subject, start, end, severity, profile in (
            self.gray.degraded_intervals()
        ):
            if severity < limit or (end - start + 1) < 3 * limit:
                continue
            node = subject[0]
            key = (kind, subject, start, end)
            if node in suspected or key in self._missed_reported:
                continue
            self._missed_reported.add(key)
            self.missed_degradations += 1
            where = (
                f"node {node}"
                if kind == "stall"
                else f"link {subject[0]}-{subject[1]}"
            )
            self.report_as(
                "unbounded-stall",
                f"{profile} {kind} on {where} over rounds {start}-{end} "
                f"stretched delivery by {severity} rounds (detection "
                f"bound {limit}) but no observer ever suspected node "
                f"{node}",
            )


class ByzantineOracle(Monitor):
    """Byzantine detection quality, graded against the taint ledger.

    The :class:`repro.sim.faults.ByzantineSchedule` knows exactly which
    nodes lied and which contradictory contents were delivered; the
    witness defence (:mod:`repro.resilience.byzantine`) only sees
    delivered claims.  This oracle compares the two and reports under
    three rules:

    * ``false-conviction`` — the witness pool convicted an honest node.
      Eviction turns a conviction into a crash, so a false conviction
      silently drops a truthful contribution — the one failure mode a
      sound accusation protocol must never exhibit.
    * ``undetected-equivocation`` — the ground-truth ledger shows two
      contradictory delivered contents for one claim (same epoch, round,
      sender, kind) yet the sender was never convicted.  Two delivered
      variants are an equivocation proof by definition; missing it means
      the cross-validation echo lost information.
    * ``influence-exceeded`` — a certified result whose error over its
      claimed coverage exceeds its shipped ``influence_bound`` (or that
      ships no bound at all while compromised nodes remain): the
      certification promised more than the defence delivered.

    Convictions and equivocations are graded once per run via
    :meth:`grade_convictions`; the final certificate via
    :meth:`grade_result`.  Per-network hooks are no-ops — grading needs
    the whole-run ledger, which only the runner holds.
    """

    rule = "byzantine"

    def __init__(
        self,
        byz,
        inputs: Dict[int, int],
        caaf=None,
        mode: str = "strict",
    ) -> None:
        super().__init__(mode)
        self.byz = byz
        self.inputs = dict(inputs)
        self.caaf = caaf
        self.false_convictions = 0
        self.undetected_equivocations = 0
        self.influence_exceeded = 0
        self._reported: set = set()

    def report_as(
        self, rule: str, message: str, rnd: Optional[int] = None
    ) -> None:
        """Like :meth:`Monitor.report` but under a per-event rule."""
        self.violations.append(MonitorEvent(rule, rnd, message))
        if self.mode == "strict":
            raise InvariantViolation(rule, message, rnd)

    def grade_convictions(self, convictions) -> None:
        """Grade the conviction set against the compromised-node ledger.

        ``convictions`` is any iterable of convicted node ids (the
        defence coordinator's ``convictions`` mapping iterates as one).
        """
        if self.byz is None:
            return
        convicted = set(convictions)
        compromised = set(self.byz.byz_nodes())
        for node in sorted(convicted - compromised):
            key = ("false", node)
            if key in self._reported:
                continue
            self._reported.add(key)
            self.false_convictions += 1
            self.report_as(
                "false-conviction",
                f"honest node {node} was convicted by the witness pool "
                f"(compromised nodes: {sorted(compromised)}): its "
                "contribution was wrongly evicted",
            )
        groups: Dict[tuple, set] = {}
        rounds: Dict[tuple, int] = {}
        for epoch, rnd, sender, _receiver, content_key in (
            self.byz.delivered_taints
        ):
            kind, payload = content_key
            group = (epoch, rnd, sender, kind)
            groups.setdefault(group, set()).add(payload)
            rounds[group] = rnd
        for group in sorted(groups, key=str):
            variants = groups[group]
            epoch, rnd, sender, kind = group
            if len(variants) < 2 or sender in convicted:
                continue
            key = ("equiv", group)
            if key in self._reported:
                continue
            self._reported.add(key)
            self.undetected_equivocations += 1
            self.report_as(
                "undetected-equivocation",
                f"node {sender} delivered {len(variants)} contradictory "
                f"{kind!r} contents in epoch {epoch} round {rnd} but was "
                "never convicted",
                rnd,
            )

    def grade_result(self, partial) -> None:
        """Grade the final certificate: the shipped bound must hold.

        An honest run's value lies in the Section 2 correctness bracket
        ``[lower_bound, upper_bound]`` (coverage aggregate up to the
        all-nodes aggregate — mid-run crashes may or may not have folded
        in before dying); the certificate promises the compromised
        residue moves it by at most ``influence_bound`` beyond that.
        """
        if partial is None or not partial.certified or partial.value is None:
            return
        bound = partial.influence_bound
        if bound is None:
            remaining = set(self.byz.byz_nodes()) & set(partial.coverage)
            if remaining:
                self.influence_exceeded += 1
                self.report_as(
                    "influence-exceeded",
                    f"certified result ships no influence bound although "
                    f"compromised nodes {sorted(remaining)} remain in its "
                    "coverage",
                )
            return
        lo = (partial.lower_bound or 0) - bound
        hi = (
            partial.upper_bound if partial.upper_bound is not None else 0
        ) + bound
        if not lo <= partial.value <= hi:
            self.influence_exceeded += 1
            self.report_as(
                "influence-exceeded",
                f"certified value {partial.value} falls outside "
                f"[{partial.lower_bound}, {partial.upper_bound}] widened "
                f"by the shipped influence bound {bound}",
            )


class RetransmitBudgetMonitor(Monitor):
    """The transport's per-frame retransmit budget must never be exceeded.

    The :class:`repro.resilience.transport.ReliableTransport` ledger is
    the ground truth; the transport enforces the budget itself, so any
    overrun means the ledger (or a shim) is corrupted.
    """

    rule = "retransmit-budget"

    def __init__(self, transport, mode: str = "strict") -> None:
        super().__init__(mode)
        self.transport = transport
        self._reported: set = set()

    def _check(self, network) -> None:
        for sender, logical_round, used in self.transport.budget_overruns():
            key = (sender, logical_round)
            if key in self._reported:
                continue
            self._reported.add(key)
            self.report(
                f"node {sender} used {used} retransmissions for logical "
                f"round {logical_round}, budget is "
                f"{self.transport.config.retransmits}",
                network.round,
            )

    def after_round(self, network) -> None:
        self._check(network)

    def finalize(self, network) -> None:
        self._check(network)


def theorem1_cc_envelope(
    topology,
    f: int,
    b: int,
    c: int = 2,
    include_fallback: bool = True,
    max_input: Optional[int] = None,
) -> float:
    """A concrete per-node bit envelope for one Algorithm 1 execution.

    Theorem 1 bounds the *expected* CC; a single execution is bounded by
    the worst realization: at most ``min(x, ceil(logN))`` AGG/VERI pairs,
    each within its abort thresholds ``(11t+14)(logN+5)`` and
    ``(5t+7)(3logN+10)``, plus (unless ``include_fallback`` is False) the
    brute-force fallback's ``N * (tag + id + value)`` bits.  Any execution
    beyond this envelope broke a Theorem 5/6 guarantee.
    """
    # Imported lazily: repro.core imports repro.sim at package load.
    from ..core.algorithm1 import TradeoffPlan
    from ..core.params import params_for
    from .message import TAG_BITS, id_bits, value_bits

    params = params_for(topology, t=0, c=c, max_input=max_input)
    plan = TradeoffPlan(params=params, b=b, f=f)
    p = params.with_t(plan.t)
    pairs = min(plan.x, max(1, math.ceil(math.log2(max(2, params.n_nodes)))))
    envelope = pairs * (p.agg_bit_budget + p.veri_bit_budget)
    if include_fallback:
        n = topology.n_nodes
        per_entry = (
            TAG_BITS
            + 2 * id_bits(n)
            + value_bits(max_input if max_input is not None else n)
        )
        envelope += n * per_entry
    return float(envelope)


def standard_monitors(
    topology,
    inputs: Dict[int, int],
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    caaf=None,
    mode: str = "strict",
    cc_bound: Optional[float] = None,
    recovery: bool = False,
    transport=None,
    corruption=(),
    integrity=None,
    churn: bool = False,
    gray=None,
    byz=None,
) -> List[Monitor]:
    """The default monitor stack for one protocol execution.

    Always includes root-safety and the termination oracle; adds the
    ``f``-budget monitor when ``f`` is declared and the CC-envelope
    monitor when an explicit ``cc_bound`` is given (callers wanting the
    Theorem 1 envelope compute it with :func:`theorem1_cc_envelope`).
    With ``recovery`` the hard root-safety check is replaced by
    :class:`RecoverySafetyMonitor` (root crashes are then sanctioned but
    still recorded); a ``transport`` coordinator adds the
    retransmit-budget watchdog; ``corruption`` sources (injectors with a
    ``delivered_corruptions`` ledger) add the silent-corruption oracle,
    matched against the ``integrity`` coordinator's rejection log; and
    ``churn`` adds the :class:`DoubleCountOracle` (fed by the churn epoch
    manager with the booked contribution ledger); a ``gray`` fault
    schedule adds the :class:`StragglerOracle` grading the transport's
    suspicion record against the ground-truth degradation ledger; a
    ``byz`` schedule adds the :class:`ByzantineOracle` grading witness
    convictions and the shipped influence bound against the taint
    ledger.
    """
    monitors: List[Monitor] = [
        RecoverySafetyMonitor(topology.root, mode=mode)
        if recovery
        else RootSafetyMonitor(topology.root, mode=mode),
        OracleMonitor(topology, inputs, caaf=caaf, mode=mode),
    ]
    if f is not None:
        monitors.insert(1, FBudgetMonitor(topology, f, mode=mode))
    if cc_bound is not None:
        monitors.append(CCEnvelopeMonitor(cc_bound, mode=mode))
    if transport is not None:
        monitors.append(RetransmitBudgetMonitor(transport, mode=mode))
    corruption = list(corruption)
    if corruption:
        monitors.append(
            CorruptionOracleMonitor(corruption, integrity, mode=mode)
        )
    if churn:
        monitors.append(DoubleCountOracle(inputs, caaf=caaf, mode=mode))
    if gray is not None:
        monitors.append(StragglerOracle(gray, transport=transport, mode=mode))
    if byz is not None:
        monitors.append(ByzantineOracle(byz, inputs, caaf=caaf, mode=mode))
    return monitors


def violations_of(monitors) -> List[MonitorEvent]:
    """All recorded violations across a monitor stack, in order."""
    out: List[MonitorEvent] = []
    for monitor in monitors or ():
        out.extend(monitor.violations)
    return out
