"""The flood primitive used throughout the paper's protocols.

Per the paper (caption of Algorithm 2): "For a node to flood a message, the
node sends the message to its neighbors.  Any node receiving a flooded
message simply forwards that message upon first receiving that message. ...
if a node receives a second flooded message (potentially initiated by a
different source) with the same content, the node will not forward it again."

Two timing details matter for the paper's round-exact wave arguments
(speculative flooding, failed-parent and failed-child detection):

* Forwarding happens *in the same round* a content is first received, so a
  flood initiated in round ``r`` reaches every node at distance ``x`` in
  round ``r + x``.
* De-duplication is purely content-based; a node that already forwarded a
  content (as initiator or forwarder) never sends it again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from .message import Envelope, Part


class FloodManager:
    """Tracks flood contents seen by one node and queues forwards.

    Typical use inside a handler's ``on_round``::

        floods.absorb(inbox)             # queue first-seen contents
        floods.initiate(part)            # start a new flood (deduplicated)
        out.extend(floods.emit())        # drain this round's flood sends
    """

    def __init__(self, flood_kinds: Iterable[str]) -> None:
        self._flood_kinds: Set[str] = set(flood_kinds)
        self._seen: Set[tuple] = set()
        self._queue: List[Part] = []
        #: Every flood part ever received or initiated, keyed by content.
        self.known: Dict[tuple, Part] = {}
        #: Round of first receipt/initiation per content (filled by callers
        #: passing ``rnd`` to :meth:`absorb` / :meth:`initiate`).
        self.first_seen_round: Dict[tuple, int] = {}

    def is_flood_kind(self, kind: str) -> bool:
        """Whether parts of this kind participate in flooding."""
        return kind in self._flood_kinds

    def has_seen(self, kind: str, payload) -> bool:
        """Whether this node has already seen a flood content."""
        return (kind, payload) in self._seen

    def absorb(self, inbox: Sequence[Envelope], rnd: int = 0) -> List[Envelope]:
        """Process received envelopes; queue first-seen floods for forwarding.

        Returns the envelopes whose content was seen for the *first* time
        (useful for handlers that react to new flood contents).
        """
        fresh: List[Envelope] = []
        for env in inbox:
            part = env.part
            if part.kind not in self._flood_kinds:
                continue
            key = part.content_key
            if key in self._seen:
                continue
            self._seen.add(key)
            self.known[key] = part
            self.first_seen_round[key] = rnd
            self._queue.append(part)
            fresh.append(env)
        return fresh

    def initiate(self, part: Part, rnd: int = 0) -> bool:
        """Start a new flood; returns False if the content was already seen.

        The paper notes that when several witnesses would flood identical
        determinations, "a node only needs to participate in one such
        flooding" — content-based de-duplication implements exactly that.
        """
        if part.kind not in self._flood_kinds:
            raise ValueError(f"{part.kind!r} is not a registered flood kind")
        key = part.content_key
        if key in self._seen:
            return False
        self._seen.add(key)
        self.known[key] = part
        self.first_seen_round[key] = rnd
        self._queue.append(part)
        return True

    def emit(self) -> List[Part]:
        """Drain the queue of parts to broadcast this round."""
        out, self._queue = self._queue, []
        return out

    def contents(self, kind: str) -> List[tuple]:
        """All payloads seen for one flood kind."""
        return [payload for (k, payload) in self._seen if k == kind]
