"""Deterministic failure forensics: recording executions into repro bundles.

The chaos layer (:mod:`repro.sim.faults`, :mod:`repro.adversary.adaptive`)
can *find* executions where a protocol misbehaves outside the paper's
oblivious crash model, but a finding is only useful if it can be re-run.
This module captures everything needed to make one execution a permanent,
deterministic artifact:

* the **configuration** — protocol, parameters, topology, inputs, declared
  oblivious crash schedule, and the exact protocol-RNG state at run start;
* the **fault decisions actually taken** — every drop / duplicate / delay
  keyed by ``(epoch, due_round, sender, receiver, part, occurrence)``,
  every inbox reordering, and every online (adaptive) crash, so replay
  re-applies outcomes instead of re-rolling injector RNG;
* per-round **digests** (broadcast count/bits, and — under delivery
  faults — delivered-envelope count/bits) used by :mod:`repro.sim.replay`
  to detect the first round a replay diverges;
* the **expected outcome** (result, correctness, CC, rounds, recorded
  monitor violations) the replay must reproduce.

Executions that build several :class:`repro.sim.network.Network` instances
per logical run (``agg_veri`` runs AGG then VERI) are handled by an
*epoch* counter: every ``attach`` starts a new epoch, and all decision
keys carry it.

The serialized form is a versioned JSON "repro bundle"
(:meth:`ExecutionRecord.to_json` / :meth:`ExecutionRecord.from_json`);
:mod:`repro.sim.replay` re-executes bundles and
:mod:`repro.adversary.shrink` minimizes them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .faults import FaultInjector
from .message import Part

#: Bundle file magic + schema version; bump on incompatible change.
BUNDLE_FORMAT = "repro-bundle"
#: Version written by this build.  v2 adds per-transmit ``outp`` entries
#: (content rewrites from corruption injectors); v3 adds churn params
#: (``params["churn"]`` — a serialized :class:`repro.sim.faults.ChurnSchedule`
#: — and ``params["churn_policy"]``) so crash-recovery runs replay with
#: the same revive/flap timeline; v4 adds gray-failure params
#: (``params["gray"]`` — a serialized
#: :class:`repro.sim.faults.GrayFailureSchedule` — plus the transport's
#: ``rto``/``hedge`` knobs inside ``params["transport"]``) so straggler
#: runs replay with the same degradation ledger and detection config;
#: v5 adds Byzantine params (``params["byz"]`` — a serialized
#: :class:`repro.sim.faults.ByzantineSchedule` — and
#: ``params["byz_config"]`` — a serialized
#: :class:`repro.resilience.byzantine.ByzantineConfig`) so defended runs
#: replay with the same compromised-node behaviours and witness
#: configuration; the schedule is deterministic, so replay re-runs it
#: live rather than re-applying recorded rewrites.  ``outp`` entries may
#: carry a forensic ``byz:<mode>`` marker when a Byzantine injector rides
#: inside the recorded chain — replay routes those away from the
#: corruption ledgers.  v1/v2/v3/v4 bundles load unchanged.
BUNDLE_VERSION = 5
SUPPORTED_BUNDLE_VERSIONS = frozenset({1, 2, 3, 4, 5})


class RecordingError(RuntimeError):
    """An execution did something the recorder cannot capture faithfully."""


def part_key(part: Part) -> List[Any]:
    """JSON-stable identity of a message part: ``[kind, payload_repr, bits]``.

    ``repr`` of the payload is used because payloads are arbitrary hashable
    tuples; for the int/str/tuple payloads the protocols use, ``repr`` is
    deterministic across processes (unlike ``hash``).
    """
    return [part.kind, repr(part.payload), part.bits]


@dataclass
class ExecutionRecord:
    """One complete, replayable execution — the in-memory form of a bundle.

    Attributes mirror the bundle JSON one-to-one; see the module docstring
    for semantics.  ``transmits`` entries are dicts with keys ``e`` (epoch),
    ``due`` (original due round), ``s``/``r`` (sender/receiver), ``part``
    (:func:`part_key`), ``occ`` (occurrence index among identical keys) and
    ``out`` (the due rounds actually delivered — ``[]`` is a drop, two
    entries a duplication, a shifted round a delay).  When an injector
    rewrote content (corruption), the entry also carries ``outp``: the
    full ``[[due, part_key], ...]`` delivered list, replayed verbatim
    (bundle version 2).  ``reorders`` carry a
    permutation ``perm`` such that ``new[i] = old[perm[i]]``; ``crashes``
    are online ``schedule_crash`` decisions ``{e, at, node, round}``
    re-applied at the end of round ``at``.
    """

    protocol: str
    topology: Dict[str, Any]
    inputs: Dict[str, int]
    schedule: Dict[str, int]
    params: Dict[str, Any]
    seed: Optional[int] = None
    rng_state: Optional[List[Any]] = None
    strict_model: bool = False
    monitor_mode: Optional[str] = None
    injector_specs: List[str] = field(default_factory=list)
    faulty_delivery: bool = False
    transmits: List[Dict[str, Any]] = field(default_factory=list)
    reorders: List[Dict[str, Any]] = field(default_factory=list)
    crashes: List[Dict[str, Any]] = field(default_factory=list)
    digests: Dict[str, List[List[int]]] = field(default_factory=dict)
    expected: Dict[str, Any] = field(default_factory=dict)
    version: int = BUNDLE_VERSION
    format: str = BUNDLE_FORMAT

    # ------------------------------------------------------------------ #
    # Serialization.
    # ------------------------------------------------------------------ #

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form, stable under ``json`` round-trips."""
        return _listify(asdict(self))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The versioned JSON bundle text (sorted keys: diff-friendly)."""
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ExecutionRecord":
        """Rebuild from :meth:`to_jsonable` output, validating the header."""
        if data.get("format") != BUNDLE_FORMAT:
            raise ValueError(
                f"not a {BUNDLE_FORMAT} file (format={data.get('format')!r})"
            )
        if data.get("version") not in SUPPORTED_BUNDLE_VERSIONS:
            raise ValueError(
                f"unsupported bundle version {data.get('version')!r} "
                f"(this build reads versions "
                f"{sorted(SUPPORTED_BUNDLE_VERSIONS)})"
            )
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"bundle has unknown fields: {sorted(unknown)}")
        return cls(**{k: v for k, v in data.items() if k in fields})

    @classmethod
    def from_json(cls, text: str) -> "ExecutionRecord":
        """Parse a bundle produced by :meth:`to_json`."""
        return cls.from_jsonable(json.loads(text))

    def save(self, path: str) -> str:
        """Write the bundle to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ExecutionRecord":
        """Read a bundle file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------ #
    # Derived views.
    # ------------------------------------------------------------------ #

    @property
    def n_decisions(self) -> int:
        """All shrinkable events: fault decisions + scheduled crashes +
        declared Byzantine behaviours."""
        return (
            len(self.transmits)
            + len(self.reorders)
            + len(self.crashes)
            + len(self.schedule)
            + len((self.params.get("byz") or {}).get("behaviors") or {})
        )

    def content_hash(self, length: int = 10) -> str:
        """A short stable digest of the bundle (used in corpus filenames)."""
        body = json.dumps(
            {
                k: v
                for k, v in self.to_jsonable().items()
                if k not in ("expected",)
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:length]

    def build_topology(self):
        """Reconstruct the :class:`repro.graphs.topology.Topology`."""
        # Imported lazily: repro.graphs is a sibling package of repro.sim.
        from ..graphs.topology import Topology

        return Topology(
            {int(u): list(vs) for u, vs in self.topology["adjacency"].items()},
            name=self.topology.get("name", "bundle"),
            root=int(self.topology["root"]),
        )

    def build_inputs(self) -> Dict[int, int]:
        """Reconstruct the per-node input map with int keys."""
        return {int(u): int(v) for u, v in self.inputs.items()}

    def build_schedule(self):
        """Reconstruct the declared oblivious crash schedule."""
        from ..adversary.schedule import FailureSchedule

        return FailureSchedule({int(u): int(r) for u, r in self.schedule.items()})


def _listify(value: Any) -> Any:
    """Tuples become lists recursively, so JSON round-trips are identity."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    if isinstance(value, list):
        return [_listify(v) for v in value]
    if isinstance(value, dict):
        return {k: _listify(v) for k, v in value.items()}
    return value


def serialize_topology(topology) -> Dict[str, Any]:
    """The bundle's inline topology form (adjacency + root + name)."""
    return {
        "name": topology.name,
        "root": topology.root,
        "adjacency": {
            str(u): list(vs) for u, vs in topology.adjacency.items()
        },
    }


class RecordingInjector(FaultInjector):
    """Middleware that runs an inner injector chain and records its decisions.

    Replaces the caller's injector list on the network: the recorder itself
    drives the inner chain for delivery rewrites and inbox arrangement, so
    each *original* transmission maps cleanly to its *final* outcome (the
    network would otherwise present rewritten copies to later injectors
    individually).  Crash-only chains keep the exact-model delivery path
    because :attr:`modifies_delivery` mirrors the inner chain.

    Online crashes (adaptive adversaries calling ``schedule_crash``) are
    captured by diffing the network's crash map at every round end against
    the epoch's baseline snapshot.
    """

    def __init__(self, inner: Sequence[FaultInjector] = ()) -> None:
        super().__init__()
        self.inner: List[FaultInjector] = list(inner)
        self.modifies_delivery = any(
            getattr(i, "modifies_delivery", False) for i in self.inner
        )
        self.epoch = -1
        self.transmits: List[Dict[str, Any]] = []
        self.reorders: List[Dict[str, Any]] = []
        self.crashes: List[Dict[str, Any]] = []
        # epoch -> round -> [broadcasts, broadcast bits, deliveries,
        # delivered bits].  Deliveries are tallied in arrange_inbox, which
        # the scheduled-delivery path runs for every non-empty inbox — so
        # a tampered drop/duplicate decision shows up even when the
        # broadcast pattern is unchanged (e.g. a removed duplicate of a
        # flooded part that receivers would de-duplicate anyway).
        self._digests: Dict[int, Dict[int, List[int]]] = {}
        self._occ: Dict[Tuple, int] = {}
        self._crash_snapshot: Dict[int, float] = {}

    # -- lifecycle ------------------------------------------------------ #

    def attach(self, network) -> None:
        """Start a new epoch: forward attach, snapshot baseline crashes."""
        super().attach(network)
        self.epoch += 1
        self._occ = {}
        for injector in self.inner:
            injector.attach(network)
        self._crash_snapshot = dict(network.crash_rounds)
        self._digests[self.epoch] = {}

    def begin_round(self, rnd: int) -> None:
        for injector in self.inner:
            injector.begin_round(rnd)

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Tally the per-round digest, then forward the observation."""
        digest = self._digests[self.epoch].setdefault(rnd, [0, 0, 0, 0])
        digest[0] += 1
        digest[1] += bits
        for injector in self.inner:
            injector.on_broadcast(rnd, node, parts, bits)

    def end_round(self, rnd: int) -> None:
        """Forward (inner adversaries crash here), then diff the crash map."""
        for injector in self.inner:
            injector.end_round(rnd)
        for node, crash_round in self.network.crash_rounds.items():
            if self._crash_snapshot.get(node) != crash_round:
                self.crashes.append(
                    {
                        "e": self.epoch,
                        "at": rnd,
                        "node": node,
                        "round": int(crash_round),
                    }
                )
        self._crash_snapshot = dict(self.network.crash_rounds)

    # -- delivery rewrites ---------------------------------------------- #

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Run the inner chain on one delivery copy; record any deviation."""
        deliveries: List[Tuple[int, Part]] = [(due, part)]
        for injector in self.inner:
            if not getattr(injector, "modifies_delivery", False):
                continue
            rewritten: List[Tuple[int, Part]] = []
            for d, p in deliveries:
                rewritten.extend(injector.on_transmit(d, sender, receiver, p))
            deliveries = rewritten
        key = (self.epoch, due, sender, receiver, part.kind,
               repr(part.payload), part.bits)
        occ = self._occ.get(key, 0)
        self._occ[key] = occ + 1
        if deliveries != [(due, part)]:
            entry = {
                "e": self.epoch,
                "due": due,
                "s": sender,
                "r": receiver,
                "part": part_key(part),
                "occ": occ,
                "out": [d for d, _ in deliveries],
            }
            if any(p != part for _, p in deliveries):
                # A corruption injector rewrote content: record the full
                # delivered (due, part) list so replay re-applies the
                # rewrite instead of re-rolling injector RNG.  Rewrites
                # the injector classified as stale replays (authentic
                # content, wrong time) carry a third "stale" element so
                # the replay rebuilds the same split ground truth; a
                # Byzantine injector's rewrites carry ``byz:<mode>`` so
                # replay keeps them out of the corruption ledgers.
                entry["outp"] = [
                    [d, part_key(p)]
                    + (
                        [mode]
                        if p != part
                        and (mode := self._rewrite_mode(sender, receiver, p))
                        is not None
                        else []
                    )
                    for d, p in deliveries
                ]
            self.transmits.append(entry)
        return deliveries

    def _rewrite_mode(self, sender: int, receiver: int, part: Part):
        """Ask the inner chain how a rewritten part was tampered.

        Corruption injectors answer through ``corruption_mode`` (only the
        ``stale`` classification matters to replay); Byzantine schedules
        through ``byz_mode``, reported as a ``byz:<mode>`` marker.
        """
        for injector in self.inner:
            fn = getattr(injector, "corruption_mode", None)
            if fn is not None:
                mode = fn(sender, receiver, part)
                if mode == "stale":
                    return mode
            fn = getattr(injector, "byz_mode", None)
            if fn is not None:
                mode = fn(sender, receiver, part)
                if mode is not None:
                    return f"byz:{mode}"
        return None

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Run the inner chain on one inbox; record the final permutation."""
        digest = self._digests[self.epoch].setdefault(rnd, [0, 0, 0, 0])
        digest[2] += len(envelopes)
        digest[3] += sum(e.part.bits for e in envelopes)
        arranged = list(envelopes)
        for injector in self.inner:
            if getattr(injector, "modifies_delivery", False):
                arranged = injector.arrange_inbox(rnd, receiver, arranged)
        if arranged != list(envelopes):
            if sorted(map(repr, arranged)) != sorted(map(repr, envelopes)):
                raise RecordingError(
                    "an injector added or removed envelopes in "
                    "arrange_inbox; only permutations are replayable"
                )
            remaining = list(range(len(envelopes)))
            perm: List[int] = []
            for envelope in arranged:
                for pos, idx in enumerate(remaining):
                    if envelopes[idx] == envelope:
                        perm.append(idx)
                        del remaining[pos]
                        break
            self.reorders.append(
                {"e": self.epoch, "round": rnd, "r": receiver, "perm": perm}
            )
        return arranged

    # -- export --------------------------------------------------------- #

    def digests_jsonable(self) -> Dict[str, List[List[int]]]:
        """Digests as ``{epoch: [[round, broadcasts, bcast_bits,
        deliveries, delivered_bits], ...]}``."""
        return {
            str(epoch): [
                [rnd, *d] for rnd, d in sorted(rounds.items())
            ]
            for epoch, rounds in self._digests.items()
        }


def expected_outcome(record) -> Dict[str, Any]:
    """The outcome slice of a bundle, from a finished ``RunRecord``."""
    return {
        "result": record.result,
        "correct": record.correct,
        "cc_bits": record.cc_bits,
        "rounds": record.rounds,
        "error": record.error,
        "error_kind": record.error_kind,
        "violations": list(record.extra.get("violations", [])),
    }


def is_failure(record) -> bool:
    """Whether a ``RunRecord`` is worth capturing as a repro bundle.

    A row is a *failure* when it errored, graded incorrect, or carries
    recorded monitor violations — exactly the rows the sweep/chaos
    harnesses flag.
    """
    return bool(
        record.failed
        or not record.correct
        or record.extra.get("violations")
    )


def make_execution_record(
    recorder: RecordingInjector,
    protocol: str,
    topology,
    inputs: Dict[int, int],
    schedule,
    params: Dict[str, Any],
    run_record=None,
    seed: Optional[int] = None,
    rng_state=None,
    strict_model: bool = False,
    monitor_mode: Optional[str] = None,
) -> ExecutionRecord:
    """Assemble the bundle for one recorded execution."""
    crash_rounds = getattr(schedule, "crash_rounds", schedule) or {}
    record = ExecutionRecord(
        protocol=protocol,
        topology=serialize_topology(topology),
        inputs={str(u): int(v) for u, v in inputs.items()},
        schedule={str(u): int(r) for u, r in crash_rounds.items()},
        params={k: v for k, v in params.items() if v is not None},
        seed=seed,
        rng_state=_listify(rng_state) if rng_state is not None else None,
        strict_model=strict_model,
        monitor_mode=monitor_mode,
        injector_specs=[repr(i) for i in recorder.inner],
        faulty_delivery=recorder.modifies_delivery,
        transmits=list(recorder.transmits),
        reorders=list(recorder.reorders),
        crashes=list(recorder.crashes),
        digests=recorder.digests_jsonable(),
        expected=expected_outcome(run_record) if run_record else {},
    )
    return record
