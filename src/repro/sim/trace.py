"""Structured execution tracing for the simulator.

A :class:`Tracer` attached to a :class:`repro.sim.network.Network` records
every broadcast, delivery, and crash as typed events.  Traces are the
debugging story for protocol work: they answer "who sent what when", "when
did the flood reach node 17", and "what did the root hear in round 42"
without print statements inside handlers.

Events are cheap namedtuples; filters return lists so they compose with
ordinary list comprehensions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Set

from .message import Part


class SendEvent(NamedTuple):
    """One physical broadcast: ``node`` sent ``parts`` in ``round``."""

    round: int
    node: int
    parts: tuple
    bits: int


class DeliverEvent(NamedTuple):
    """One delivery: ``receiver`` got ``part`` from ``sender`` in ``round``."""

    round: int
    sender: int
    receiver: int
    part: Part


class CrashEvent(NamedTuple):
    """``node`` became dead at the start of ``round``."""

    round: int
    node: int


class Tracer:
    """Collects simulator events, with query helpers.

    Attach via ``Network(..., tracer=Tracer())`` or
    :func:`attach_tracer`.  Deliveries are voluminous; pass
    ``record_deliveries=False`` to keep only sends and crashes.
    """

    def __init__(self, record_deliveries: bool = True) -> None:
        self.record_deliveries = record_deliveries
        self.sends: List[SendEvent] = []
        self.deliveries: List[DeliverEvent] = []
        self.crashes: List[CrashEvent] = []
        self._crashed_seen: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Recording hooks (called by Network).
    # ------------------------------------------------------------------ #

    def on_send(self, rnd: int, node: int, parts: List[Part], bits: int) -> None:
        """Network hook: one physical broadcast happened."""
        self.sends.append(SendEvent(rnd, node, tuple(parts), bits))

    def on_deliver(self, rnd: int, sender: int, receiver: int, part: Part) -> None:
        """Network hook: one part was delivered to one neighbour."""
        if self.record_deliveries:
            self.deliveries.append(DeliverEvent(rnd, sender, receiver, part))

    def on_crash(self, rnd: int, node: int) -> None:
        """Network hook: a node entered its first dead round."""
        if node not in self._crashed_seen:
            self._crashed_seen.add(node)
            self.crashes.append(CrashEvent(rnd, node))

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #

    def sends_by(self, node: int) -> List[SendEvent]:
        """All broadcasts made by ``node``."""
        return [e for e in self.sends if e.node == node]

    def sends_of_kind(self, kind: str) -> List[SendEvent]:
        """All broadcasts containing at least one part of ``kind``."""
        return [
            e for e in self.sends if any(p.kind == kind for p in e.parts)
        ]

    def first_send_of_kind(self, kind: str) -> Optional[SendEvent]:
        """The earliest broadcast carrying a part of ``kind``."""
        events = self.sends_of_kind(kind)
        return min(events, default=None, key=lambda e: e.round)

    def deliveries_to(self, node: int) -> List[DeliverEvent]:
        """Everything ``node`` received."""
        return [e for e in self.deliveries if e.receiver == node]

    def first_delivery(
        self, receiver: int, kind: str
    ) -> Optional[DeliverEvent]:
        """When ``receiver`` first heard a part of ``kind`` (None if never)."""
        for e in self.deliveries:
            if e.receiver == receiver and e.part.kind == kind:
                return e
        return None

    def bits_per_round(self) -> Dict[int, int]:
        """Total bits broadcast network-wide, per round."""
        out: Dict[int, int] = {}
        for e in self.sends:
            out[e.round] = out.get(e.round, 0) + e.bits
        return out

    def kind_histogram(self) -> Dict[str, int]:
        """How many parts of each kind were broadcast in total."""
        out: Dict[str, int] = {}
        for e in self.sends:
            for p in e.parts:
                out[p.kind] = out.get(p.kind, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # Rendering.
    # ------------------------------------------------------------------ #

    def timeline(
        self,
        node: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
        limit: int = 200,
    ) -> str:
        """A human-readable event log, optionally filtered."""
        kind_set = set(kinds) if kinds is not None else None
        lines = []
        events = sorted(
            [("send", e.round, e) for e in self.sends]
            + [("crash", e.round, e) for e in self.crashes],
            key=lambda item: item[1],
        )
        for label, rnd, event in events:
            if label == "send":
                if node is not None and event.node != node:
                    continue
                parts = [
                    p
                    for p in event.parts
                    if kind_set is None or p.kind in kind_set
                ]
                if not parts:
                    continue
                desc = ", ".join(f"{p.kind}{p.payload}" for p in parts)
                lines.append(f"r{rnd:>4}  node {event.node:>3} sends: {desc}")
            else:
                if node is not None and event.node != node:
                    continue
                lines.append(f"r{rnd:>4}  node {event.node:>3} CRASHES")
            if len(lines) >= limit:
                lines.append(f"... (truncated at {limit} lines)")
                break
        return "\n".join(lines) if lines else "(no matching events)"


def attach_tracer(network, tracer: Optional[Tracer] = None) -> Tracer:
    """Attach a tracer to an existing network; returns the tracer."""
    tracer = tracer or Tracer()
    network.tracer = tracer
    return tracer
