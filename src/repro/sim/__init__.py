"""Synchronous local-broadcast network simulator (the paper's model)."""

from .faults import (
    REJOIN_AMNESIAC,
    REJOIN_DURABLE,
    ChurnSchedule,
    FaultCounts,
    FaultInjector,
    MessageFaults,
    ScheduledCrashes,
    random_churn,
)
from .flooding import FloodManager
from .message import TAG_BITS, Envelope, Part, id_bits, total_bits, value_bits
from .monitors import (
    CCEnvelopeMonitor,
    DoubleCountOracle,
    FBudgetMonitor,
    InvariantViolation,
    Monitor,
    MonitorEvent,
    OracleMonitor,
    RootSafetyMonitor,
    standard_monitors,
    theorem1_cc_envelope,
    violations_of,
)
from .network import NEVER, ROOT_CRASH_ERROR, Network
from .node import NodeHandler, RelayNode, SilentNode
from .recorder import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    ExecutionRecord,
    RecordingError,
    RecordingInjector,
    is_failure,
    make_execution_record,
    serialize_topology,
)
from .replay import ReplayDivergence, ReplayInjector, ReplayOutcome, replay_bundle
from .stats import SimStats
from .trace import CrashEvent, DeliverEvent, SendEvent, Tracer, attach_tracer
from .validation import Violation, assert_model, validate_model

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_VERSION",
    "CCEnvelopeMonitor",
    "CrashEvent",
    "DeliverEvent",
    "Envelope",
    "ExecutionRecord",
    "RecordingError",
    "RecordingInjector",
    "ReplayDivergence",
    "ReplayInjector",
    "ReplayOutcome",
    "ROOT_CRASH_ERROR",
    "is_failure",
    "make_execution_record",
    "replay_bundle",
    "serialize_topology",
    "ChurnSchedule",
    "DoubleCountOracle",
    "FBudgetMonitor",
    "FaultCounts",
    "FaultInjector",
    "FloodManager",
    "InvariantViolation",
    "MessageFaults",
    "Monitor",
    "MonitorEvent",
    "NEVER",
    "Network",
    "NodeHandler",
    "OracleMonitor",
    "Part",
    "REJOIN_AMNESIAC",
    "REJOIN_DURABLE",
    "RelayNode",
    "RootSafetyMonitor",
    "ScheduledCrashes",
    "SendEvent",
    "SilentNode",
    "SimStats",
    "TAG_BITS",
    "Tracer",
    "Violation",
    "assert_model",
    "attach_tracer",
    "id_bits",
    "random_churn",
    "standard_monitors",
    "theorem1_cc_envelope",
    "validate_model",
    "total_bits",
    "value_bits",
    "violations_of",
]
