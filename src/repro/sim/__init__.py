"""Synchronous local-broadcast network simulator (the paper's model)."""

from .flooding import FloodManager
from .message import TAG_BITS, Envelope, Part, id_bits, total_bits, value_bits
from .network import NEVER, Network
from .node import NodeHandler, RelayNode, SilentNode
from .stats import SimStats
from .trace import CrashEvent, DeliverEvent, SendEvent, Tracer, attach_tracer
from .validation import Violation, assert_model, validate_model

__all__ = [
    "CrashEvent",
    "DeliverEvent",
    "Envelope",
    "FloodManager",
    "NEVER",
    "Network",
    "NodeHandler",
    "Part",
    "RelayNode",
    "SendEvent",
    "SilentNode",
    "SimStats",
    "TAG_BITS",
    "Tracer",
    "Violation",
    "assert_model",
    "attach_tracer",
    "id_bits",
    "validate_model",
    "total_bits",
    "value_bits",
]
