"""The synchronous local-broadcast network simulator.

This is the paper's model, realized exactly (Section 2):

* Protocols proceed in rounds.  In each round a node first receives all
  messages its neighbours broadcast in the previous round, computes, and may
  broadcast a single (combined) message received by all neighbours next
  round.
* All nodes except the root may crash.  A node crashed at round ``r``
  neither computes nor sends in rounds ``>= r``; its round-``r - 1``
  broadcast is still delivered.  The adversary is oblivious: the crash
  schedule is fixed before execution.
* Per-node bits are accounted in :class:`repro.sim.stats.SimStats`; the max
  over nodes is the paper's communication complexity for the execution.

On top of the exact model the network supports two optional layers:

* **fault injectors** (:mod:`repro.sim.faults`) — middleware on the
  delivery path that can crash nodes online and drop / duplicate / delay /
  reorder in-flight messages, for probing behaviour *outside* the paper's
  oblivious crash model.  The oblivious crash schedule itself is realized
  as the :class:`repro.sim.faults.ScheduledCrashes` injector.
* **monitors** (:mod:`repro.sim.monitors`) — runtime invariant checks
  evaluated after every round and once at the end of :meth:`Network.run`.

When no injector modifies deliveries the original exact delivery path is
used, so in-model executions are bit- and order-identical to the
middleware-free simulator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..obs import spans as _spans
from .message import Envelope, Part
from .node import NodeHandler
from .stats import SimStats

#: Crash round assigned to nodes that never fail.
NEVER = float("inf")

#: The one sentence every root-crash rejection uses, regardless of which
#: layer catches it (schedule validation, the ScheduledCrashes injector,
#: or an online ``schedule_crash`` call).
ROOT_CRASH_ERROR = "the root node may not fail (Section 2)"


class Network:
    """Synchronous round executor over an undirected topology.

    Args:
        adjacency: Mapping from node id to its neighbours.  Must describe an
            undirected graph (``v in adjacency[u]`` iff ``u in adjacency[v]``,
            no self-loops, every neighbour a known node) — violations raise
            ``ValueError``.
        handlers: One :class:`NodeHandler` per node id.
        crash_rounds: Optional mapping from node id to the first round in
            which the node is dead.  Missing nodes never crash.  Internally
            realized as a :class:`repro.sim.faults.ScheduledCrashes`
            injector prepended to ``injectors``.
        tracer: Optional :class:`repro.sim.trace.Tracer` receiving event
            hooks.
        injectors: Optional sequence of
            :class:`repro.sim.faults.FaultInjector` middleware on the
            crash/delivery path.
        monitors: Optional sequence of :class:`repro.sim.monitors.Monitor`
            invariant checks, run after every round and finalized by
            :meth:`run`.
        root: Optional id of the designated root node.  When given, every
            path that can kill a node — the ``crash_rounds`` schedule, a
            :class:`repro.sim.faults.ScheduledCrashes` injector, and
            online :meth:`schedule_crash` calls — rejects the root with
            ``ValueError(ROOT_CRASH_ERROR)``.
        allow_root_crash: Opt out of the Section-2 root protection (used by
            the :mod:`repro.resilience` failover layer, which survives root
            crashes by electing a replacement).  The in-model strict
            rejection stays the default.
        overhead_fn: Optional ``Part -> int`` classifier; for each broadcast
            part it returns how many of the part's bits are recovery-layer
            overhead.  Overhead is booked separately in
            :attr:`SimStats.overhead_bits` so :attr:`SimStats.max_bits`
            keeps meaning the protocol CC.
    """

    def __init__(
        self,
        adjacency: Mapping[int, Sequence[int]],
        handlers: Mapping[int, NodeHandler],
        crash_rounds: Optional[Mapping[int, int]] = None,
        tracer=None,
        injectors: Sequence = (),
        monitors: Sequence = (),
        root: Optional[int] = None,
        allow_root_crash: bool = False,
        overhead_fn=None,
    ) -> None:
        self.adjacency: Dict[int, tuple] = {
            u: tuple(vs) for u, vs in adjacency.items()
        }
        self._check_adjacency()
        if root is not None and root not in self.adjacency:
            raise ValueError(f"root {root} is not a node of the graph")
        #: Protected root node id (None: no node is protected).
        self.root = root
        #: When True the root may crash (resilience/failover mode); the
        #: Section-2 rejection is skipped everywhere it consults this flag.
        self.allow_root_crash = allow_root_crash
        #: Optional ``Part -> int`` recovery-overhead classifier.
        self.overhead_fn = overhead_fn
        missing = set(self.adjacency) - set(handlers)
        if missing:
            raise ValueError(f"no handler for nodes: {sorted(missing)}")
        self.handlers: Dict[int, NodeHandler] = dict(handlers)
        self.stats = SimStats()
        self.round = 0
        #: Optional :class:`repro.sim.trace.Tracer` receiving event hooks.
        self.tracer = tracer
        # Broadcasts made in the current round, delivered next round
        # (exact-model fast path).
        self._in_flight: List[tuple] = []
        # Scheduled deliveries ``(due_round, sender, receiver, part)``
        # (fault-injection path; supports delays and duplicates).
        self._pending: List[tuple] = []

        #: First dead round per node; mutated online by injectors via
        #: :meth:`schedule_crash`.
        self.crash_rounds: Dict[int, float] = {}
        #: Bounded outages per node: half-open ``[start, end)`` round
        #: intervals during which the node neither computes nor sends
        #: (crash-recovery churn; see :class:`repro.sim.faults.ChurnSchedule`).
        self.down_intervals: Dict[int, List[tuple]] = {}
        #: Link flap intervals keyed by normalized edge ``(min, max)``:
        #: closed ``[start, end]`` delivery-round windows during which the
        #: link carries nothing in either direction.
        self.link_flaps: Dict[tuple, List[tuple]] = {}
        #: Current incarnation per node (0 = original process; bumped by
        #: the churn injector each time the node revives).
        self.incarnations: Dict[int, int] = {}
        self.injectors: List = list(injectors)
        if crash_rounds:
            from .faults import ScheduledCrashes

            self.injectors.insert(0, ScheduledCrashes(crash_rounds))
        for injector in self.injectors:
            injector.attach(self)
        # Delivery-modifying injectors force the scheduled-delivery path;
        # crash-only injectors keep the exact-model fast path.
        self._faulty_delivery = any(
            getattr(i, "modifies_delivery", False) for i in self.injectors
        )
        self.monitors: List = list(monitors)
        for monitor in self.monitors:
            monitor.attach(self)

    # ------------------------------------------------------------------ #
    # Construction-time validation.
    # ------------------------------------------------------------------ #

    def _check_adjacency(self) -> None:
        nodes = set(self.adjacency)
        for u, neighbours in self.adjacency.items():
            for v in neighbours:
                if v == u:
                    raise ValueError(f"self-loop at node {u}")
                if v not in nodes:
                    raise ValueError(
                        f"node {u} lists unknown neighbour {v}"
                    )
                if u not in self.adjacency[v]:
                    raise ValueError(
                        f"adjacency is not symmetric: {u} lists {v} "
                        f"but {v} does not list {u}"
                    )

    # ------------------------------------------------------------------ #
    # Liveness.
    # ------------------------------------------------------------------ #

    def is_alive(self, node: int, rnd: Optional[int] = None) -> bool:
        """Whether ``node`` is alive in round ``rnd`` (default: current)."""
        if rnd is None:
            rnd = self.round
        if rnd >= self.crash_rounds.get(node, NEVER):
            return False
        for start, end in self.down_intervals.get(node, ()):
            if start <= rnd < end:
                return False
        return True

    def alive_nodes(self, rnd: Optional[int] = None) -> List[int]:
        """All nodes alive in round ``rnd`` (default: current)."""
        return [u for u in self.adjacency if self.is_alive(u, rnd)]

    def schedule_crash(self, node: int, rnd: int) -> None:
        """Mark ``node`` dead from round ``rnd`` on (injector API).

        Keeps the earliest crash round if the node is already scheduled.
        Adaptive injectors call this during execution; crashing a node in
        the current or a past round is rejected because the node has
        already acted this round (crashes take effect from the *next*
        round at the earliest).
        """
        if node not in self.adjacency:
            raise ValueError(f"cannot crash unknown node {node}")
        if self.root is not None and node == self.root and not self.allow_root_crash:
            raise ValueError(ROOT_CRASH_ERROR)
        if rnd <= self.round:
            raise ValueError(
                f"cannot crash node {node} at round {rnd}: "
                f"round {self.round} already executed"
            )
        current = self.crash_rounds.get(node, NEVER)
        self.crash_rounds[node] = min(current, rnd)

    def schedule_downtime(self, node: int, start: int, end: float) -> None:
        """Mark ``node`` down for rounds ``start <= r < end`` (churn API).

        Unlike :meth:`schedule_crash` the outage is bounded: the node
        resumes computing and broadcasting in round ``end``.  The root is
        protected exactly as for permanent crashes — even a temporary root
        outage is outside Section 2 unless ``allow_root_crash`` is set.
        """
        if node not in self.adjacency:
            raise ValueError(f"cannot take down unknown node {node}")
        if (
            self.root is not None
            and node == self.root
            and not self.allow_root_crash
        ):
            raise ValueError(ROOT_CRASH_ERROR)
        if end <= start:
            raise ValueError(
                f"downtime for node {node} must end after it starts "
                f"(got [{start}, {end}))"
            )
        intervals = self.down_intervals.setdefault(node, [])
        intervals.append((start, end))
        intervals.sort()

    def schedule_link_flap(self, u: int, v: int, start: int, end: int) -> None:
        """Suppress all deliveries over edge ``{u, v}`` due in rounds
        ``start..end`` inclusive (churn API)."""
        if u not in self.adjacency or v not in self.adjacency[u]:
            raise ValueError(f"cannot flap nonexistent edge {u}-{v}")
        if end < start:
            raise ValueError(
                f"flap window for edge {u}-{v} is empty ({start}-{end})"
            )
        key = (u, v) if u < v else (v, u)
        windows = self.link_flaps.setdefault(key, [])
        windows.append((start, end))
        windows.sort()

    def link_up(self, u: int, v: int, rnd: int) -> bool:
        """Whether edge ``{u, v}`` carries deliveries due in round ``rnd``."""
        key = (u, v) if u < v else (v, u)
        for start, end in self.link_flaps.get(key, ()):
            if start <= rnd <= end:
                return False
        return True

    def incarnation_of(self, node: int) -> int:
        """The node's current incarnation (0 until its first revival)."""
        return self.incarnations.get(node, 0)

    def bump_incarnation(self, node: int) -> int:
        """Record a revival of ``node``; returns its new incarnation."""
        inc = self.incarnations.get(node, 0) + 1
        self.incarnations[node] = inc
        return inc

    # ------------------------------------------------------------------ #
    # Round execution.
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Execute one round: deliver, compute, broadcast."""
        self.round += 1
        rnd = self.round
        for injector in self.injectors:
            injector.begin_round(rnd)

        if self._faulty_delivery:
            inboxes = self._deliver_scheduled(rnd)
        else:
            inboxes = self._deliver_exact(rnd)

        # Live nodes compute and broadcast.
        for node in self.adjacency:
            if not self.is_alive(node, rnd):
                if self.tracer is not None and (
                    self.crash_rounds.get(node) == rnd
                    or any(
                        s == rnd for s, _ in self.down_intervals.get(node, ())
                    )
                ):
                    self.tracer.on_crash(rnd, node)
                continue
            inbox = inboxes.get(node, ())
            parts = list(self.handlers[node].on_round(rnd, inbox))
            if parts:
                bits = sum(p.bits for p in parts)
                overhead = (
                    sum(self.overhead_fn(p) for p in parts)
                    if self.overhead_fn is not None
                    else 0
                )
                self.stats.record_broadcast(node, len(parts), bits, overhead)
                if _spans.messages:
                    _spans.active().event(
                        "send",
                        cat="message",
                        tid=node,
                        round=rnd,
                        parts=len(parts),
                        bits=bits,
                        kinds=",".join(p.kind for p in parts),
                    )
                if self.tracer is not None:
                    self.tracer.on_send(rnd, node, parts, bits)
                for injector in self.injectors:
                    injector.on_broadcast(rnd, node, parts, bits)
                if self._faulty_delivery:
                    self._transmit(rnd, node, parts)
                else:
                    self._in_flight.append((node, parts))
        self.stats.rounds_executed = rnd
        for injector in self.injectors:
            injector.end_round(rnd)
        for monitor in self.monitors:
            monitor.after_round(self)

    def _deliver_exact(self, rnd: int) -> Dict[int, List[Envelope]]:
        """Exact-model delivery: last round's broadcasts reach all live
        neighbours, in broadcast order."""
        inboxes: Dict[int, List[Envelope]] = {}
        for sender, parts in self._in_flight:
            for neighbour in self.adjacency[sender]:
                if self.link_flaps and not self.link_up(sender, neighbour, rnd):
                    continue
                if self.is_alive(neighbour, rnd):
                    box = inboxes.setdefault(neighbour, [])
                    box.extend(Envelope(sender, p) for p in parts)
                    if self.tracer is not None:
                        for p in parts:
                            self.tracer.on_deliver(rnd, sender, neighbour, p)
        self._in_flight = []
        return inboxes

    def _transmit(self, rnd: int, sender: int, parts: Sequence[Part]) -> None:
        """Schedule a broadcast's per-link deliveries through the injectors.

        Each (neighbour, part) copy nominally arrives at ``rnd + 1``; every
        delivery-modifying injector may drop it, duplicate it, or move its
        due round.
        """
        for neighbour in self.adjacency[sender]:
            for part in parts:
                deliveries = [(rnd + 1, part)]
                for injector in self.injectors:
                    if not getattr(injector, "modifies_delivery", False):
                        continue
                    rewritten: List[tuple] = []
                    for due, p in deliveries:
                        rewritten.extend(
                            injector.on_transmit(due, sender, neighbour, p)
                        )
                    deliveries = rewritten
                for due, p in deliveries:
                    self._pending.append((due, sender, neighbour, p))

    def _deliver_scheduled(self, rnd: int) -> Dict[int, List[Envelope]]:
        """Fault-injection delivery: hand over every pending delivery that
        is due this round, then let injectors reorder each inbox."""
        inboxes: Dict[int, List[Envelope]] = {}
        still_pending: List[tuple] = []
        for due, sender, receiver, part in self._pending:
            if due > rnd:
                still_pending.append((due, sender, receiver, part))
                continue
            if not self.is_alive(receiver, rnd):
                continue
            # A delivery at round ``rnd`` requires a broadcast at round
            # ``rnd - 1`` in the model; a sender dead by then cannot have
            # made it.  This drops delayed/duplicated ghost copies landing
            # after the sender's crash round (delivery exactly *at* the
            # crash round stays, matching the model's "the round r-1
            # broadcast is still delivered").
            if not self.is_alive(sender, rnd - 1):
                continue
            # A flapped link carries nothing in either direction while its
            # window is open; copies delayed *into* the window are lost too.
            if self.link_flaps and not self.link_up(sender, receiver, rnd):
                continue
            inboxes.setdefault(receiver, []).append(Envelope(sender, part))
            if self.tracer is not None:
                self.tracer.on_deliver(rnd, sender, receiver, part)
        self._pending = still_pending
        for receiver, box in inboxes.items():
            for injector in self.injectors:
                if getattr(injector, "modifies_delivery", False):
                    box = injector.arrange_inbox(rnd, receiver, box)
            inboxes[receiver] = box
        return inboxes

    def run(self, max_rounds: int, stop_on_output: bool = True) -> SimStats:
        """Run up to ``max_rounds`` rounds.

        ``max_rounds`` must be non-negative (0 executes nothing and returns
        the untouched stats).  Stops early once any handler's
        :meth:`NodeHandler.wants_to_stop` returns True (the root
        terminating with its output), unless ``stop_on_output`` is False.
        Also stops once the designated root is dead — impossible in the
        strict model, but under ``allow_root_crash`` the remaining rounds
        cannot produce an output and the failover layer takes over.
        Monitors are finalized exactly once, after the last round.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
        for _ in range(max_rounds):
            self.step()
            if stop_on_output and any(
                h.wants_to_stop() for h in self.handlers.values()
            ):
                break
            if self.root is not None and not self.is_alive(self.root):
                break
        for monitor in self.monitors:
            monitor.finalize(self)
        return self.stats
