"""The synchronous local-broadcast network simulator.

This is the paper's model, realized exactly (Section 2):

* Protocols proceed in rounds.  In each round a node first receives all
  messages its neighbours broadcast in the previous round, computes, and may
  broadcast a single (combined) message received by all neighbours next
  round.
* All nodes except the root may crash.  A node crashed at round ``r``
  neither computes nor sends in rounds ``>= r``; its round-``r - 1``
  broadcast is still delivered.  The adversary is oblivious: the crash
  schedule is fixed before execution.
* Per-node bits are accounted in :class:`repro.sim.stats.SimStats`; the max
  over nodes is the paper's communication complexity for the execution.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .message import Envelope, Part
from .node import NodeHandler
from .stats import SimStats

#: Crash round assigned to nodes that never fail.
NEVER = float("inf")


class Network:
    """Synchronous round executor over an undirected topology.

    Args:
        adjacency: Mapping from node id to its neighbours.  Must describe an
            undirected graph (``v in adjacency[u]`` iff ``u in adjacency[v]``).
        handlers: One :class:`NodeHandler` per node id.
        crash_rounds: Optional mapping from node id to the first round in
            which the node is dead.  Missing nodes never crash.
    """

    def __init__(
        self,
        adjacency: Mapping[int, Sequence[int]],
        handlers: Mapping[int, NodeHandler],
        crash_rounds: Optional[Mapping[int, int]] = None,
        tracer=None,
    ) -> None:
        self.adjacency: Dict[int, tuple] = {
            u: tuple(vs) for u, vs in adjacency.items()
        }
        missing = set(self.adjacency) - set(handlers)
        if missing:
            raise ValueError(f"no handler for nodes: {sorted(missing)}")
        self.handlers: Dict[int, NodeHandler] = dict(handlers)
        self.crash_rounds: Dict[int, float] = dict(crash_rounds or {})
        self.stats = SimStats()
        self.round = 0
        #: Optional :class:`repro.sim.trace.Tracer` receiving event hooks.
        self.tracer = tracer
        # Broadcasts made in the current round, delivered next round.
        self._in_flight: List[tuple] = []

    def is_alive(self, node: int, rnd: Optional[int] = None) -> bool:
        """Whether ``node`` is alive in round ``rnd`` (default: current)."""
        if rnd is None:
            rnd = self.round
        return rnd < self.crash_rounds.get(node, NEVER)

    def alive_nodes(self, rnd: Optional[int] = None) -> List[int]:
        """All nodes alive in round ``rnd`` (default: current)."""
        return [u for u in self.adjacency if self.is_alive(u, rnd)]

    def step(self) -> None:
        """Execute one round: deliver, compute, broadcast."""
        self.round += 1
        rnd = self.round

        # Deliver last round's broadcasts to live neighbours.
        inboxes: Dict[int, List[Envelope]] = {}
        for sender, parts in self._in_flight:
            for neighbour in self.adjacency[sender]:
                if self.is_alive(neighbour, rnd):
                    box = inboxes.setdefault(neighbour, [])
                    box.extend(Envelope(sender, p) for p in parts)
                    if self.tracer is not None:
                        for p in parts:
                            self.tracer.on_deliver(rnd, sender, neighbour, p)
        self._in_flight = []

        # Live nodes compute and broadcast.
        for node in self.adjacency:
            if not self.is_alive(node, rnd):
                if self.tracer is not None and self.crash_rounds.get(node) == rnd:
                    self.tracer.on_crash(rnd, node)
                continue
            inbox = inboxes.get(node, ())
            parts = list(self.handlers[node].on_round(rnd, inbox))
            if parts:
                bits = sum(p.bits for p in parts)
                self.stats.record_broadcast(node, len(parts), bits)
                self._in_flight.append((node, parts))
                if self.tracer is not None:
                    self.tracer.on_send(rnd, node, parts, bits)
        self.stats.rounds_executed = rnd

    def run(self, max_rounds: int, stop_on_output: bool = True) -> SimStats:
        """Run up to ``max_rounds`` rounds.

        Stops early once any handler's :meth:`NodeHandler.wants_to_stop`
        returns True (the root terminating with its output), unless
        ``stop_on_output`` is False.
        """
        for _ in range(max_rounds):
            self.step()
            if stop_on_output and any(
                h.wants_to_stop() for h in self.handlers.values()
            ):
                break
        return self.stats
