"""End-to-end message integrity: authenticated frames, detection, quarantine.

See :mod:`repro.integrity.frames` for the frame format and verification
taxonomy, and :mod:`repro.integrity.quarantine` for per-link corruption
scoring.
"""

from .frames import (
    BLAMED_REASONS,
    CHECKSUM_BITS,
    FrameIntegrityError,
    INTEG_HEADER_BITS,
    INTEG_KIND,
    INTEGRITY_MODES,
    IntegrityConfig,
    IntegrityCoordinator,
    IntegrityNode,
    MAC_BITS,
    REASON_DIGEST,
    REASON_QUARANTINED,
    REASON_SENDER,
    REASON_STALE,
    REASON_STRUCTURE,
    REASON_UNFRAMED,
    SEQ_BITS,
    as_integrity,
    compute_tag,
    unresolved_corruptions,
)
from .quarantine import (
    Link,
    LinkQuarantine,
    NodeQuarantineEvent,
    QuarantineEvent,
)

__all__ = sorted(
    [
        "BLAMED_REASONS",
        "CHECKSUM_BITS",
        "FrameIntegrityError",
        "INTEG_HEADER_BITS",
        "INTEG_KIND",
        "INTEGRITY_MODES",
        "IntegrityConfig",
        "IntegrityCoordinator",
        "IntegrityNode",
        "Link",
        "LinkQuarantine",
        "MAC_BITS",
        "NodeQuarantineEvent",
        "QuarantineEvent",
        "REASON_DIGEST",
        "REASON_QUARANTINED",
        "REASON_SENDER",
        "REASON_STALE",
        "REASON_STRUCTURE",
        "REASON_UNFRAMED",
        "SEQ_BITS",
        "as_integrity",
        "compute_tag",
        "unresolved_corruptions",
    ]
)
