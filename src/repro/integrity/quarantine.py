"""Per-link corruption scoring and quarantine.

Detection alone (:mod:`repro.integrity.frames`) makes a corrupted frame
look like a *lost* frame — recoverable by the transport's NACK path, but
only while the retransmit budget holds out.  A link that corrupts
persistently would bleed the budget forever, so receivers keep a per-link
corruption score and, past a threshold, **quarantine** the link: all
further frames from that sender are dropped unverified, and the link is
reported as a failed edge — the paper's own edge-failure class, to be
budgeted within ``f`` like any other failure (Section 2 counts a failed
node as its incident edges failing; a quarantined link is one such edge).

Only *provable* corruption is blamed: a digest or structure failure cannot
be produced by an honest network, while a stale (replayed) frame is
authentic content at the wrong time — indistinguishable from an honestly
delayed copy — so stale rejections drop the frame but never move the
score.

The score counts **consecutive** blamed rejections: a verified frame from
the same sender clears it.  A merely-noisy link (per-copy corruption rate
``p``) reaches a threshold of ``k`` only with probability ``p**k`` per
window, while a persistently corrupt link — the adversary the quarantine
exists for — crosses it almost immediately.  Long low-rate runs therefore
never quarantine by accumulation alone.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple

#: A directed link, as ``(sender, receiver)``.
Link = Tuple[int, int]


class QuarantineEvent(NamedTuple):
    """One link crossing the quarantine threshold."""

    sender: int
    receiver: int
    round: int
    score: int


class LinkQuarantine:
    """Score ledger: per-link *consecutive* blamed-rejection counts and
    quarantined links."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.scores: Dict[Link, int] = {}
        self.quarantined: Set[Link] = set()
        self.events: List[QuarantineEvent] = []

    def is_quarantined(self, link: Link) -> bool:
        """Whether frames on ``link`` are dropped without verification."""
        return link in self.quarantined

    def clear(self, link: Link) -> None:
        """A frame on ``link`` verified: reset its consecutive-blame score
        (quarantine itself is permanent — a quarantined link stays out)."""
        if link not in self.quarantined:
            self.scores.pop(link, None)

    def record(self, link: Link, rnd: int, blamed: bool) -> bool:
        """Book one rejection on ``link``; returns True when this rejection
        newly quarantines the link.  Unblamed rejections (stale replays)
        leave the score untouched."""
        if not blamed or link in self.quarantined:
            return False
        score = self.scores.get(link, 0) + 1
        self.scores[link] = score
        if score >= self.threshold:
            self.quarantined.add(link)
            self.events.append(QuarantineEvent(link[0], link[1], rnd, score))
            return True
        return False

    def quarantined_links(self) -> List[Link]:
        """Quarantined ``(sender, receiver)`` links, sorted for stable output."""
        return sorted(self.quarantined)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports and run rows."""
        return {
            "threshold": self.threshold,
            "quarantined": [list(link) for link in self.quarantined_links()],
            "scores": {
                f"{s}->{r}": score
                for (s, r), score in sorted(self.scores.items())
            },
        }
