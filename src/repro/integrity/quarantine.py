"""Per-link corruption scoring and quarantine.

Detection alone (:mod:`repro.integrity.frames`) makes a corrupted frame
look like a *lost* frame — recoverable by the transport's NACK path, but
only while the retransmit budget holds out.  A link that corrupts
persistently would bleed the budget forever, so receivers keep a per-link
corruption score and, past a threshold, **quarantine** the link: all
further frames from that sender are dropped unverified, and the link is
reported as a failed edge — the paper's own edge-failure class, to be
budgeted within ``f`` like any other failure (Section 2 counts a failed
node as its incident edges failing; a quarantined link is one such edge).

Only *provable* corruption is blamed: a digest or structure failure cannot
be produced by an honest network, while a stale (replayed) frame is
authentic content at the wrong time — indistinguishable from an honestly
delayed copy — so stale rejections drop the frame but never move the
score.

The score counts **consecutive** blamed rejections: a verified frame from
the same sender clears it.  A merely-noisy link (per-copy corruption rate
``p``) reaches a threshold of ``k`` only with probability ``p**k`` per
window, while a persistently corrupt link — the adversary the quarantine
exists for — crosses it almost immediately.  Long low-rate runs therefore
never quarantine by accumulation alone.

Blame also escalates from links to **nodes**: a compromised node corrupts
on every link it speaks, and quarantining its links one at a time lets it
bleed each receiver's retransmit budget in turn.  Once
``node_threshold`` (default 2) of a sender's outgoing links are
individually quarantined, the fault is node-local rather than link-local,
and the whole node is quarantined — every receiver drops its frames
unverified from then on, even on links whose own score never crossed the
link threshold.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple

#: A directed link, as ``(sender, receiver)``.
Link = Tuple[int, int]


class QuarantineEvent(NamedTuple):
    """One link crossing the quarantine threshold."""

    sender: int
    receiver: int
    round: int
    score: int


class NodeQuarantineEvent(NamedTuple):
    """One sender crossing the node-level blame threshold."""

    node: int
    round: int
    links: int


class LinkQuarantine:
    """Score ledger: per-link *consecutive* blamed-rejection counts and
    quarantined links."""

    def __init__(self, threshold: int, node_threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if node_threshold < 2:
            raise ValueError(
                f"node_threshold must be >= 2 (one blamed link is "
                f"link-local evidence), got {node_threshold}"
            )
        self.threshold = threshold
        self.node_threshold = node_threshold
        self.scores: Dict[Link, int] = {}
        self.quarantined: Set[Link] = set()
        self.quarantined_nodes: Set[int] = set()
        self.events: List[QuarantineEvent] = []
        self.node_events: List[NodeQuarantineEvent] = []

    def is_quarantined(self, link: Link) -> bool:
        """Whether frames on ``link`` are dropped without verification
        (true for an individually quarantined link *or* any link out of
        a node-quarantined sender)."""
        return link in self.quarantined or link[0] in self.quarantined_nodes

    def clear(self, link: Link) -> None:
        """A frame on ``link`` verified: reset its consecutive-blame score
        (quarantine itself is permanent — a quarantined link stays out)."""
        if link not in self.quarantined:
            self.scores.pop(link, None)

    def record(self, link: Link, rnd: int, blamed: bool) -> bool:
        """Book one rejection on ``link``; returns True when this rejection
        newly quarantines the link.  Unblamed rejections (stale replays)
        leave the score untouched."""
        if not blamed or self.is_quarantined(link):
            return False
        score = self.scores.get(link, 0) + 1
        self.scores[link] = score
        if score >= self.threshold:
            self.quarantined.add(link)
            self.events.append(QuarantineEvent(link[0], link[1], rnd, score))
            sender = link[0]
            blamed_links = sum(1 for s, _ in self.quarantined if s == sender)
            if (
                blamed_links >= self.node_threshold
                and sender not in self.quarantined_nodes
            ):
                self.quarantined_nodes.add(sender)
                self.node_events.append(
                    NodeQuarantineEvent(sender, rnd, blamed_links)
                )
            return True
        return False

    def quarantined_links(self) -> List[Link]:
        """Quarantined ``(sender, receiver)`` links, sorted for stable output."""
        return sorted(self.quarantined)

    def quarantined_node_ids(self) -> List[int]:
        """Node-quarantined senders, sorted for stable output."""
        return sorted(self.quarantined_nodes)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports and run rows."""
        return {
            "threshold": self.threshold,
            "node_threshold": self.node_threshold,
            "quarantined": [list(link) for link in self.quarantined_links()],
            "quarantined_nodes": self.quarantined_node_ids(),
            "scores": {
                f"{s}->{r}": score
                for (s, r), score in sorted(self.scores.items())
            },
        }
