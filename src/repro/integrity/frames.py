"""Authenticated wire frames: end-to-end message integrity over lossy links.

The paper's model (Section 2) assumes every *delivered* bit is correct;
:class:`repro.sim.faults.MessageCorruption` breaks that promise with
bit-flips, truncations and stale replays — the silent-data-corruption
class that SUM-style CAAFs amplify into silently wrong global answers.
This module restores delivered-bit integrity underneath an unmodified
protocol (or transport) handler:

* Every node's per-round broadcast is wrapped in a single **integrity
  frame** carrying a sequence number (the physical round), the sender id,
  the inner parts, and an authenticator *tag* over the canonical bytes of
  all three — a CRC-32 checksum truncated to :data:`CHECKSUM_BITS`
  (``mode="checksum"``: flips, not adversaries) or a seeded-key
  HMAC-SHA256 truncated to :data:`MAC_BITS` (``mode="mac"``).  Both are
  deterministic functions of the frame content and ``key_seed``, so runs
  record and replay bit-exactly.
* Receivers verify structure, sender binding, tag and per-link sequence
  monotonicity.  Any failure raises a structured
  :class:`FrameIntegrityError` — decoders never crash on garbage and
  never silently accept it — and the frame is **dropped**.  Underneath a
  :mod:`repro.resilience.transport` shim the dropped frame looks like a
  lost frame, so the existing NACK path retransmits it: detection
  composes with recovery for free.
* Persistent corruption trips the per-link quarantine
  (:mod:`repro.integrity.quarantine`).
* All framing and tag bits are classified as overhead by
  :meth:`IntegrityCoordinator.overhead_fn` and booked under
  :attr:`repro.sim.stats.SimStats.overhead_bits` — never protocol CC,
  the same accounting rule as the transport.  With ``mode="off"`` no
  wrapping happens at all, so protocol CC accounting is untouched.

Layering: integrity wraps **outermost** (outside the transport shim), so
what travels on the wire — and what the corruption injector can touch —
is always an authenticated frame.
"""

from __future__ import annotations

import hashlib
import hmac
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..sim.message import Envelope, Part, TAG_BITS
from ..sim.node import NodeHandler
from .quarantine import LinkQuarantine

#: Wire kind of an integrity frame.
INTEG_KIND = "integ_frame"

#: Bits for the frame sequence number (the physical round).
SEQ_BITS = 16
#: Header cost of every integrity frame: tag + sequence number.  The
#: sender id inside the frame is bound by the authenticator but carried
#: by the envelope, so it costs no extra wire bits.
INTEG_HEADER_BITS = TAG_BITS + SEQ_BITS

#: Authenticator widths per mode.
CHECKSUM_BITS = 16
MAC_BITS = 32

#: Accepted ``--integrity`` modes.
INTEGRITY_MODES = ("off", "checksum", "mac")

# Structured rejection reasons (the FrameIntegrityError taxonomy).
REASON_STRUCTURE = "bad-structure"
REASON_DIGEST = "bad-digest"
REASON_SENDER = "sender-mismatch"
REASON_STALE = "stale-replay"
REASON_UNFRAMED = "unframed"
REASON_QUARANTINED = "quarantined"

#: Reasons that prove corruption (an honest network cannot produce them)
#: and therefore move the quarantine score.  A stale frame is authentic
#: content at the wrong time — indistinguishable from honest delay — and
#: is dropped without blame.
BLAMED_REASONS = frozenset(
    {REASON_STRUCTURE, REASON_DIGEST, REASON_SENDER, REASON_UNFRAMED}
)


class FrameIntegrityError(ValueError):
    """A delivered frame failed integrity verification.

    Attributes:
        reason: One of the ``REASON_*`` constants — the taxonomy consumers
            branch on (quarantine blames only :data:`BLAMED_REASONS`).
        sender / receiver: The link the frame arrived on.
        detail: Human-readable description of the failure.
    """

    def __init__(
        self,
        reason: str,
        detail: str,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
    ) -> None:
        self.reason = reason
        self.sender = sender
        self.receiver = receiver
        self.detail = detail
        link = (
            f" on link {sender}->{receiver}"
            if sender is not None and receiver is not None
            else ""
        )
        super().__init__(f"[{reason}]{link} {detail}")


@dataclass(frozen=True)
class IntegrityConfig:
    """Tuning knobs for the integrity layer.

    Attributes:
        mode: ``"checksum"`` (CRC-32 truncated to 16 bits — catches random
            flips), ``"mac"`` (seeded-key HMAC-SHA256 truncated to 32
            bits — catches anything that doesn't know the key), or
            ``"off"`` (no wrapping; :func:`as_integrity` returns None).
        key_seed: Seed the shared MAC key is derived from; deterministic
            so recorded runs replay bit-exactly.
        quarantine_threshold: Blamed rejections on one link before it is
            quarantined (treated as a failed edge).
    """

    mode: str = "mac"
    key_seed: int = 0
    quarantine_threshold: int = 10

    def __post_init__(self) -> None:
        if self.mode not in INTEGRITY_MODES:
            raise ValueError(
                f"mode must be one of {INTEGRITY_MODES}, got {self.mode!r}"
            )
        if self.quarantine_threshold < 1:
            raise ValueError(
                "quarantine_threshold must be >= 1, got "
                f"{self.quarantine_threshold}"
            )

    @property
    def digest_bits(self) -> int:
        """Wire width of the authenticator tag for this mode."""
        return MAC_BITS if self.mode == "mac" else CHECKSUM_BITS

    def as_jsonable(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "key_seed": self.key_seed,
            "quarantine_threshold": self.quarantine_threshold,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "IntegrityConfig":
        return cls(
            mode=str(data["mode"]),
            key_seed=int(data.get("key_seed", 0)),
            quarantine_threshold=int(data.get("quarantine_threshold", 10)),
        )


def _canonical_bytes(sender: int, seq: int, inner: tuple) -> bytes:
    """Deterministic byte form of the authenticated frame content.

    ``repr`` of the int/str/tuple payloads the protocols use is stable
    across processes — the same property the record/replay layer relies
    on — so it doubles as the canonical encoding here.
    """
    return repr((sender, seq, inner)).encode("utf-8")


def compute_tag(config: IntegrityConfig, sender: int, seq: int, inner: tuple) -> int:
    """The frame authenticator: truncated HMAC (mac) or CRC-32 (checksum)."""
    data = _canonical_bytes(sender, seq, inner)
    if config.mode == "mac":
        key = hashlib.sha256(
            f"repro-integrity-key:{config.key_seed}".encode("utf-8")
        ).digest()
        digest = hmac.new(key, data, hashlib.sha256).digest()
        return int.from_bytes(digest[: MAC_BITS // 8], "big")
    return zlib.crc32(data) & ((1 << CHECKSUM_BITS) - 1)


class IntegrityCoordinator:
    """Shared state for one run's worth of :class:`IntegrityNode`.

    Holds the config, verification counters, the rejection log (matched
    against the corruption injector's delivered-corruption ground truth
    by :func:`unresolved_corruptions`), and the link quarantine; also
    serves as the network's overhead classifier via :meth:`overhead_fn`.

    The ``epoch`` counter advances once per :meth:`wrap` call — i.e. once
    per network build, in lock-step with
    :attr:`repro.sim.faults.MessageCorruption.epoch` — so rejection
    records match delivered-corruption records even when failover runs
    several networks per logical run.
    """

    def __init__(self, config: Optional[IntegrityConfig] = None) -> None:
        self.config = config or IntegrityConfig()
        if self.config.mode == "off":
            raise ValueError(
                "mode 'off' means no integrity layer; use as_integrity()"
            )
        self.epoch = -1
        self.frames = 0
        self.verified = 0
        self.rejected: Counter = Counter()
        self.quarantine = LinkQuarantine(self.config.quarantine_threshold)
        #: Every rejection as ``(epoch, round, sender, receiver,
        #: content_key)`` — multiset-matched against delivered
        #: corruptions by :func:`unresolved_corruptions`.
        self._rejection_log: List[Tuple] = []

    # -- wrapping ------------------------------------------------------- #

    def wrap(self, handlers: Dict[int, NodeHandler]) -> Dict[int, "IntegrityNode"]:
        """Wrap every handler in an :class:`IntegrityNode`; starts a new epoch."""
        self.epoch += 1
        return {u: IntegrityNode(self, u, handlers[u]) for u in handlers}

    def overhead_fn(self, inner_fn=None):
        """Overhead classifier composing with an inner (transport) classifier.

        An integrity frame's header and tag bits are overhead; the inner
        parts it carries are classified by ``inner_fn`` (so retransmitted
        transport frames inside stay overhead, and protocol payload stays
        protocol CC).  Non-frame parts delegate to ``inner_fn`` directly.
        """
        framing = INTEG_HEADER_BITS + self.config.digest_bits

        def classify(part: Part) -> int:
            if part.kind != INTEG_KIND:
                return inner_fn(part) if inner_fn is not None else 0
            overhead = framing
            if inner_fn is not None:
                try:
                    inner = part.payload[2]
                except (TypeError, IndexError):
                    inner = ()
                for kind, payload, bits in inner:
                    overhead += inner_fn(Part(kind, payload, bits))
            return overhead

        return classify

    # -- rejection bookkeeping ------------------------------------------ #

    def record_rejection(
        self, rnd: int, sender: int, receiver: int, part: Part, reason: str
    ) -> None:
        """Book one dropped frame: counters, rejection log, quarantine."""
        self.rejected[reason] += 1
        self._rejection_log.append(
            (self.epoch, rnd, sender, receiver, part.content_key)
        )
        self.quarantine.record(
            (sender, receiver), rnd, blamed=reason in BLAMED_REASONS
        )

    def rejection_keys(self) -> List[Tuple]:
        """The rejection log, for multiset matching by
        :func:`unresolved_corruptions`."""
        return list(self._rejection_log)

    @property
    def quarantined_links(self) -> List[Tuple[int, int]]:
        return self.quarantine.quarantined_links()

    def counters(self) -> Dict[str, int]:
        """Plain-dict counter snapshot for reports and run rows."""
        return {
            "frames": self.frames,
            "verified": self.verified,
            "rejected": sum(self.rejected.values()),
            **{f"rejected_{k}": v for k, v in sorted(self.rejected.items())},
            "quarantined": len(self.quarantine.quarantined),
            "quarantined_nodes": len(self.quarantine.quarantined_nodes),
        }


class IntegrityNode(NodeHandler):
    """Per-node integrity shim wrapping an inner (protocol or transport)
    handler.

    Unknown attributes delegate to the inner handler, so monitors and
    outcome extraction keep working on wrapped nodes (and chain through a
    :class:`repro.resilience.transport.TransportNode` inside).
    """

    def __init__(
        self, coordinator: IntegrityCoordinator, node_id: int, inner: NodeHandler
    ) -> None:
        self.coordinator = coordinator
        self.node_id = node_id
        self.inner = inner
        #: Highest frame sequence number accepted, per sender — replayed
        #: (or duplicated) frames carry a non-increasing seq and are
        #: dropped as stale.
        self._last_seq: Dict[int, int] = {}

    # -- delegation ---------------------------------------------------- #

    def __getattr__(self, name):
        # Only called when normal lookup fails; never for our own fields.
        inner = object.__getattribute__(self, "inner")
        return getattr(inner, name)

    def wants_to_stop(self) -> bool:
        return self.inner.wants_to_stop()

    # -- frame verification --------------------------------------------- #

    def _verify(self, rnd: int, sender: int, part: Part) -> List[Part]:
        """Verify one delivered frame; returns the inner parts or raises
        :class:`FrameIntegrityError` (never any other exception, however
        mangled the payload)."""
        me = self.node_id
        if part.kind != INTEG_KIND:
            raise FrameIntegrityError(
                REASON_UNFRAMED,
                f"unauthenticated part kind {part.kind!r}",
                sender,
                me,
            )
        payload = part.payload
        try:
            seq, claimed_sender, inner, tag = payload
            if not (
                isinstance(seq, int)
                and isinstance(claimed_sender, int)
                and isinstance(tag, int)
                and isinstance(inner, tuple)
            ):
                raise TypeError("field types")
            parts = []
            for kind, inner_payload, bits in inner:
                if not isinstance(kind, str) or not isinstance(bits, int):
                    raise TypeError("inner part types")
                parts.append(Part(kind, inner_payload, bits))
        except (TypeError, ValueError) as exc:
            raise FrameIntegrityError(
                REASON_STRUCTURE,
                f"malformed frame payload {payload!r} ({exc})",
                sender,
                me,
            ) from None
        if claimed_sender != sender:
            raise FrameIntegrityError(
                REASON_SENDER,
                f"frame claims sender {claimed_sender}, delivered by {sender}",
                sender,
                me,
            )
        expected = compute_tag(self.coordinator.config, sender, seq, inner)
        if tag != expected:
            raise FrameIntegrityError(
                REASON_DIGEST,
                f"tag {tag:#x} != expected {expected:#x}",
                sender,
                me,
            )
        # Authentic frame — but possibly a replayed (or duplicated) old
        # one.  Frames are broadcast in round ``seq`` and delivered no
        # earlier than ``seq + 1``; per-link seq must strictly increase.
        if seq > rnd - 1:
            raise FrameIntegrityError(
                REASON_STALE,
                f"frame seq {seq} from the future at round {rnd}",
                sender,
                me,
            )
        if seq <= self._last_seq.get(sender, 0):
            raise FrameIntegrityError(
                REASON_STALE,
                f"frame seq {seq} not newer than last accepted "
                f"{self._last_seq.get(sender, 0)}",
                sender,
                me,
            )
        self._last_seq[sender] = seq
        return parts

    # -- round machinery ----------------------------------------------- #

    def on_round(self, rnd: int, inbox) -> List[Part]:
        coordinator = self.coordinator
        quarantine = coordinator.quarantine
        verified_inbox: List[Envelope] = []
        for envelope in inbox:
            sender, part = envelope.sender, envelope.part
            if quarantine.is_quarantined((sender, self.node_id)):
                coordinator.record_rejection(
                    rnd, sender, self.node_id, part, REASON_QUARANTINED
                )
                continue
            try:
                parts = self._verify(rnd, sender, part)
            except FrameIntegrityError as exc:
                coordinator.record_rejection(
                    rnd, sender, self.node_id, part, exc.reason
                )
                continue
            coordinator.verified += 1
            quarantine.clear((sender, self.node_id))
            verified_inbox.extend(Envelope(sender, p) for p in parts)
        out = list(self.inner.on_round(rnd, verified_inbox))
        if not out:
            return []
        coordinator.frames += 1
        return [self._frame(rnd, out)]

    def _frame(self, rnd: int, parts: List[Part]) -> Part:
        """Wrap one round's broadcast into a single authenticated frame."""
        config = self.coordinator.config
        inner = tuple((p.kind, p.payload, p.bits) for p in parts)
        tag = compute_tag(config, self.node_id, rnd, inner)
        payload_bits = sum(p.bits for p in parts)
        return Part(
            INTEG_KIND,
            (rnd, self.node_id, inner, tag),
            INTEG_HEADER_BITS + config.digest_bits + payload_bits,
        )


def as_integrity(spec) -> Optional[IntegrityCoordinator]:
    """Coerce ``None`` / mode string / :class:`IntegrityConfig` /
    :class:`IntegrityCoordinator`; ``"off"`` collapses to None."""
    if spec is None:
        return None
    if isinstance(spec, IntegrityCoordinator):
        return spec
    if isinstance(spec, str):
        if spec == "off":
            return None
        spec = IntegrityConfig(mode=spec)
    if isinstance(spec, IntegrityConfig):
        if spec.mode == "off":
            return None
        return IntegrityCoordinator(spec)
    raise TypeError(
        "expected IntegrityConfig, IntegrityCoordinator or mode string, "
        f"got {type(spec).__name__}"
    )


def unresolved_corruptions(
    sources, coordinator: Optional[IntegrityCoordinator]
) -> List[Tuple]:
    """Delivered corruptions the integrity layer never rejected.

    ``sources`` are injectors exposing ``delivered_corruptions`` (see
    :func:`repro.sim.faults.corruption_sources`): the out-of-band ground
    truth of corrupted frames that actually reached a receiver.  Each is
    multiset-matched against the coordinator's rejection log; what is
    left over was *accepted* — a silent corruption.  With no coordinator
    (integrity off) every delivered corruption is unresolved.
    """
    rejections: Counter = Counter(
        coordinator.rejection_keys() if coordinator is not None else ()
    )
    unresolved: List[Tuple] = []
    for source in sources or ():
        for record in getattr(source, "delivered_corruptions", ()):
            key = tuple(record)
            if rejections[key] > 0:
                rejections[key] -= 1
            else:
                unresolved.append(key)
    return unresolved
