"""Export sinks and analysis helpers for traces and metrics.

Three sinks, all deterministic for a fixed seed:

* **JSONL** — one self-describing JSON object per line (meta, spans,
  instant events, metric samples), sorted keys.  The byte-identity
  contract lives here: same seed, same bytes.  Wall-clock durations
  are excluded unless ``include_wall=True``.
* **Chrome ``trace_event``** — a ``{"traceEvents": [...]}`` JSON
  document of balanced ``B``/``E`` pairs plus ``i`` instants and
  process-name metadata, loadable in Perfetto / ``chrome://tracing``.
  Timestamps map one logical round to 1 ms of trace time.
* **Prometheus textfile** — standard exposition format for the
  node-exporter textfile collector.

Plus terminal renderers (span tree, metrics table) and the pure
functions behind the ``repro-agg obs`` verb: summarize, diff, top-k,
trace validation, and a Prometheus format linter.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, _fmt_value
from .spans import SpanTracer

__all__ = [
    "chrome_trace",
    "diff_summaries",
    "jsonl_lines",
    "lint_prometheus",
    "load_trace",
    "prometheus_text",
    "render_metrics_table",
    "render_span_tree",
    "summarize_trace",
    "top_spans",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

#: trace-time microseconds per logical round in Chrome exports.
US_PER_ROUND = 1000.0


def _ensure_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


# --------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------- #


def jsonl_lines(
    tracer: Optional[SpanTracer] = None,
    registry: Optional[MetricsRegistry] = None,
    include_wall: bool = False,
) -> List[str]:
    """Serialize spans + metrics to deterministic JSONL lines."""
    lines: List[str] = []
    if tracer is not None:
        meta = {
            "type": "meta",
            "trace_id": tracer.trace_id,
            "seed": repr(tracer.seed),
            "detail": tracer.detail,
            "max_round": tracer.max_round,
            "processes": {str(k): v for k, v in tracer.processes.items()},
        }
        lines.append(json.dumps(meta, sort_keys=True))
        for span in tracer.spans:
            row = {
                "type": "span",
                "sid": span["sid"],
                "parent": span["parent"],
                "name": span["name"],
                "cat": span["cat"],
                "pid": span["pid"],
                "tid": span["tid"],
                "t0": span["t0"],
                "t1": span["t1"],
                "attrs": span["attrs"],
            }
            if include_wall:
                row["wall_ns"] = span["wall_ns"]
            lines.append(json.dumps(row, sort_keys=True))
        for event in tracer.events:
            lines.append(
                json.dumps(dict(event, type="event"), sort_keys=True)
            )
    if registry is not None:
        for name, labels, value in registry.as_samples():
            lines.append(
                json.dumps(
                    {
                        "type": "metric",
                        "name": name,
                        "labels": dict(labels),
                        "value": value,
                    },
                    sort_keys=True,
                )
            )
    return lines


def write_jsonl(
    path: str,
    tracer: Optional[SpanTracer] = None,
    registry: Optional[MetricsRegistry] = None,
    include_wall: bool = False,
) -> None:
    _ensure_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(tracer, registry, include_wall=include_wall):
            fh.write(line + "\n")


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #


def chrome_trace(tracer: SpanTracer) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from the tracer's oplog."""
    events: List[Dict[str, Any]] = []
    for pid in sorted(tracer.processes):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": tracer.processes[pid]},
            }
        )
    for op in tracer.oplog:
        entry: Dict[str, Any] = {
            "ph": op["ph"],
            "pid": op["pid"],
            "tid": op["tid"],
            "ts": op["ts"] * US_PER_ROUND,
        }
        if op["ph"] != "E":
            entry["name"] = op["name"]
            entry["cat"] = op["cat"]
        if op["ph"] == "i":
            entry["s"] = op["s"]
        if op.get("args"):
            entry["args"] = op["args"]
        events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": tracer.trace_id,
            "seed": repr(tracer.seed),
            "detail": tracer.detail,
            "clock": f"1 logical round = {US_PER_ROUND:.0f}us",
        },
    }


def write_chrome_trace(path: str, tracer: SpanTracer) -> None:
    _ensure_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh, sort_keys=True, indent=1)
        fh.write("\n")


# --------------------------------------------------------------------- #
# Prometheus textfile exposition
# --------------------------------------------------------------------- #


def _prom_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus textfile exposition format."""
    out: List[str] = []
    for family in registry.families():
        out.append(f"# HELP {family.name} {family.help or family.name}")
        out.append(f"# TYPE {family.name} {family.kind}")
        for name, labels, value in family.samples():
            out.append(f"{name}{_prom_labels(labels)} {_fmt_value(value)}")
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    _ensure_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


# --------------------------------------------------------------------- #
# terminal renderers
# --------------------------------------------------------------------- #


def render_span_tree(tracer: SpanTracer, max_spans: int = 200) -> str:
    """An indented parent/child span listing with round + wall times."""
    by_parent: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in tracer.spans:
        by_parent.setdefault(span["parent"], []).append(span)
    lines: List[str] = [f"trace {tracer.trace_id} (detail={tracer.detail})"]
    emitted = 0

    def walk(parent: Optional[str], depth: int) -> None:
        nonlocal emitted
        for span in sorted(
            by_parent.get(parent, ()), key=lambda s: (s["t0"], s["sid"])
        ):
            if emitted >= max_spans:
                return
            emitted += 1
            wall = span.get("wall_ns")
            wall_part = f"  wall={wall / 1e6:.2f}ms" if wall else ""
            lines.append(
                f"{'  ' * (depth + 1)}{span['name']} "
                f"[{span['cat']}] pid={span['pid']} tid={span['tid']} "
                f"rounds {span['t0']:g}..{span['t1']:g}{wall_part}"
            )
            walk(span["sid"], depth + 1)

    # roots are spans whose parent was never closed into the trace, too
    known = {s["sid"] for s in tracer.spans}
    roots = sorted(
        (p for p in by_parent if p is None or p not in known),
        key=lambda p: (p is not None, p or ""),
    )
    for root in roots:
        walk(root, 0)
    if emitted >= max_spans:
        lines.append(f"  ... ({len(tracer.spans) - emitted} more spans)")
    if tracer.events:
        lines.append(f"  + {len(tracer.events)} instant events")
    return "\n".join(lines)


def render_metrics_table(registry: MetricsRegistry) -> str:
    """A plain fixed-width metric/labels/value table."""
    rows = [
        (name, _prom_labels(labels) or "-", _fmt_value(value))
        for name, labels, value in registry.as_samples()
    ]
    if not rows:
        return "(no metrics recorded)"
    w_name = max(len(r[0]) for r in rows)
    w_lab = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{name:<{w_name}}  {labels:<{w_lab}}  {value}"
        for name, labels, value in rows
    )


# --------------------------------------------------------------------- #
# trace-file analysis (the `obs` verb)
# --------------------------------------------------------------------- #


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load trace events from a Chrome JSON or JSONL trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    # A Chrome trace is one JSON document; JSONL fails the whole-file
    # parse at line 2 (every line starts with "{", so sniffing the
    # first byte cannot distinguish them).
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "type" not in doc:
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(f"{path}: no traceEvents array")
        return events
    # JSONL: resynthesize B/E pairs from span rows for shared analysis.
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        if row.get("type") == "span":
            base = {"pid": row["pid"], "tid": row["tid"]}
            events.append(
                dict(
                    base,
                    ph="B",
                    name=row["name"],
                    cat=row["cat"],
                    ts=row["t0"] * US_PER_ROUND,
                )
            )
            events.append(dict(base, ph="E", ts=row["t1"] * US_PER_ROUND))
        elif row.get("type") == "event":
            events.append(
                {
                    "ph": "i",
                    "name": row["name"],
                    "cat": row["cat"],
                    "pid": row["pid"],
                    "tid": row["tid"],
                    "ts": row["ts"] * US_PER_ROUND,
                    "s": "t",
                }
            )
    return events


def _paired_spans(
    events: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Pair B/E events per (pid, tid) into flat span dicts with ``dur``."""
    stacks: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    spans: List[Dict[str, Any]] = []
    for ev in events:
        ph = ev.get("ph")
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev)
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                b = stack.pop()
                spans.append(
                    {
                        "name": b.get("name", "?"),
                        "cat": b.get("cat", "?"),
                        "pid": key[0],
                        "tid": key[1],
                        "ts": b.get("ts", 0.0),
                        "dur": max(0.0, ev.get("ts", 0.0) - b.get("ts", 0.0)),
                    }
                )
    return spans


def summarize_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace: per-span-name counts and round-time totals."""
    spans = _paired_spans(events)
    by_name: Dict[str, Dict[str, float]] = {}
    for span in spans:
        cell = by_name.setdefault(
            span["name"], {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        cell["count"] += 1
        cell["total_us"] += span["dur"]
        cell["max_us"] = max(cell["max_us"], span["dur"])
    instants: Dict[str, int] = {}
    for ev in events:
        if ev.get("ph") == "i":
            name = ev.get("name", "?")
            instants[name] = instants.get(name, 0) + 1
    return {
        "spans": len(spans),
        "instants": sum(instants.values()),
        "by_name": dict(sorted(by_name.items())),
        "instants_by_name": dict(sorted(instants.items())),
    }


def diff_summaries(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Tuple[str, float, float]]:
    """Per-span-name total-time pairs (a vs b), sorted by |delta| desc."""
    names = sorted(set(a["by_name"]) | set(b["by_name"]))
    rows = []
    for name in names:
        ta = a["by_name"].get(name, {}).get("total_us", 0.0)
        tb = b["by_name"].get(name, {}).get("total_us", 0.0)
        rows.append((name, ta, tb))
    rows.sort(key=lambda r: (-abs(r[2] - r[1]), r[0]))
    return rows


def top_spans(
    events: List[Dict[str, Any]], k: int = 10
) -> List[Dict[str, Any]]:
    """The k slowest individual spans by logical duration."""
    spans = _paired_spans(events)
    spans.sort(key=lambda s: (-s["dur"], s["name"], s["ts"]))
    return spans[: max(0, k)]


def validate_chrome_trace(doc: Any) -> List[str]:
    """Validate a Chrome trace document; return a list of problems.

    Checks well-formedness (a ``traceEvents`` array of objects with
    legal phases, numeric non-negative timestamps) and that every
    ``(pid, tid)`` track's ``B``/``E`` stream is balanced.
    """
    errors: List[str] = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["top level must be an object with a traceEvents array"]
    depth: Dict[Tuple[Any, Any], int] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "M", "X", "C"):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event {i}: bad ts {ts!r}")
        if ph in ("B", "i", "M", "X") and not ev.get("name"):
            errors.append(f"event {i}: {ph} event without a name")
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ph == "E":
            depth[key] = depth.get(key, 0) - 1
            if depth[key] < 0:
                errors.append(
                    f"event {i}: E without matching B on track {key}"
                )
                depth[key] = 0
    for key, d in sorted(depth.items(), key=str):
        if d > 0:
            errors.append(f"track {key}: {d} unclosed B event(s)")
    return errors


_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" [-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf|NaN)$"
)
_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")


def lint_prometheus(text: str) -> List[str]:
    """Lint Prometheus textfile exposition; return a list of problems."""
    errors: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()
    seen_samples: set = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _PROM_NAME.match(parts[2]):
                errors.append(f"line {lineno}: malformed HELP")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                errors.append(f"line {lineno}: malformed TYPE")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if not _PROM_SAMPLE.match(line):
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = _PROM_NAME.match(line).group(0)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE")
        key = line.rsplit(" ", 1)[0]
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {key!r}")
        seen_samples.add(key)
    # Histogram integrity: every histogram family must expose a +Inf
    # bucket whose cumulative value equals the family _count.
    lines = [
        l for l in text.splitlines() if l.strip() and not l.startswith("#")
    ]
    for family, kind in typed.items():
        if kind != "histogram":
            continue
        inf_values = [
            l.rsplit(" ", 1)[1]
            for l in lines
            if l.startswith(family + "_bucket") and 'le="+Inf"' in l
        ]
        count_values = [
            l.rsplit(" ", 1)[1]
            for l in lines
            if _PROM_NAME.match(l).group(0) == family + "_count"
        ]
        if not inf_values:
            errors.append(f"histogram {family!r}: no +Inf bucket")
        elif sorted(inf_values) != sorted(count_values):
            errors.append(
                f"histogram {family!r}: +Inf buckets do not match _count"
            )
    return errors
