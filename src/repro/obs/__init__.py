"""Unified observability: span tracing, metrics, and exporters.

One subsystem replaces the repo's three ad-hoc introspection channels
(`sim/trace.py` raw events, `sim/stats.py` counters mined per call
site, `exec/progress.py` JSONL):

* :mod:`repro.obs.spans` — deterministic span tracer (logical-round +
  monotonic clocks, seed-derived ids, module-flag hot-path guard).
* :mod:`repro.obs.metrics` — typed counter/gauge/histogram registry
  with fixed bucket bounds, plus the compatibility facade over
  ``SimStats`` / transport link ledgers.
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event`` (Perfetto),
  and Prometheus textfile sinks; terminal renderers; trace analysis.

:class:`ObsCapture` ties the three together for one capture session::

    with ObsCapture(seed=7, detail="phases") as cap:
        run_protocol(...)
    cap.write(trace_out="t.json", metrics_out="m.prom")

Observability is bookkeeping, never simulated traffic: nothing here
touches ``SimStats`` bit accounting, so protocol CC/TC numbers are
bit-for-bit identical with tracing on or off.
"""

from __future__ import annotations

from typing import Optional

from . import export, metrics, spans
from .metrics import MetricsRegistry, merge_counter_tree
from .spans import DETAIL_LEVELS, SpanTracer

__all__ = [
    "DETAIL_LEVELS",
    "MetricsRegistry",
    "ObsCapture",
    "SpanTracer",
    "export",
    "merge_counter_tree",
    "metrics",
    "spans",
]


class ObsCapture:
    """One observability capture session: tracer + registry + sinks."""

    def __init__(self, seed=0, detail: str = "phases") -> None:
        self.tracer = SpanTracer(seed=seed, detail=detail)
        self.registry = MetricsRegistry()
        self._active = False

    # -- activation ---------------------------------------------------- #

    def activate(self) -> "ObsCapture":
        spans.activate(self.tracer)
        metrics.activate(self.registry)
        self._active = True
        return self

    def deactivate(self) -> None:
        if self._active:
            spans.deactivate()
            metrics.deactivate()
            self._active = False

    def __enter__(self) -> "ObsCapture":
        return self.activate()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.deactivate()

    # -- output -------------------------------------------------------- #

    def write(
        self,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
    ) -> None:
        """Flush the capture to files.

        ``trace_out`` ending in ``.jsonl`` selects the JSONL sink
        (spans + metric samples, byte-deterministic); any other
        extension gets the Chrome ``trace_event`` document.
        ``metrics_out`` is always Prometheus textfile exposition.
        """
        self.tracer.close_all()
        if trace_out:
            if trace_out.endswith(".jsonl"):
                export.write_jsonl(trace_out, self.tracer, self.registry)
            else:
                export.write_chrome_trace(trace_out, self.tracer)
        if metrics_out:
            export.write_prometheus(metrics_out, self.registry)
