"""A typed, deterministic metrics registry: counters, gauges, histograms.

Families are created on first use and addressed by name; samples are
addressed by a sorted label tuple, so iteration order (and therefore
every export) is deterministic regardless of recording order.
Histograms use **fixed bucket bounds** supplied at creation — never
derived from the data — so two runs with the same seed produce
byte-identical exposition.

The registry *supersedes* the scattered ad-hoc accounting that grew
around :class:`repro.sim.stats.SimStats` (protocol bit counters) and
the transport's per-link retransmit ledger: :func:`record_run` and
:func:`record_link_stats` are the compatibility facade that folds
those legacy structures into metric families at run end, and
:func:`merge_counter_tree` is the single merge routine behind
``SimStats.absorb``'s link accounting (which used to hand-roll it).

Like :mod:`repro.obs.spans`, activation is guarded by a module-level
:data:`enabled` flag so the disabled path costs one attribute load.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "activate",
    "active",
    "deactivate",
    "enabled",
    "merge_counter_tree",
    "record_link_stats",
    "record_run",
    "record_unit_latency",
]

enabled: bool = False
_registry: Optional["MetricsRegistry"] = None

#: Fixed bounds for round-count histograms (simulator rounds).
ROUND_BUCKETS = (50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0)
#: Fixed bounds for CC histograms (bits at the max-loaded node).
BITS_BUCKETS = (64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)
#: Fixed bounds for unit wall-latency histograms (seconds).
WALL_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)


def active() -> Optional["MetricsRegistry"]:
    """The currently activated registry, or ``None``."""
    return _registry


def activate(registry: "MetricsRegistry") -> None:
    global _registry, enabled
    _registry = registry
    enabled = True


def deactivate() -> None:
    global _registry, enabled
    _registry = None
    enabled = False


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared family plumbing: name, help text, labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _check(self, other_kind: str) -> None:
        if self.kind != other_kind:
            raise TypeError(
                f"metric {self.name!r} is a {self.kind}, not a {other_kind}"
            )


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + amount

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [
            (self.name, key, value)
            for key, value in sorted(self.values.items())
        ]


class Gauge(_Metric):
    """A point-in-time value per label set (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self.values[_label_key(labels)] = value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [
            (self.name, key, value)
            for key, value in sorted(self.values.items())
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed, explicit bounds.

    Bounds are part of the family's identity: re-declaring the family
    with different bounds is an error, which is what keeps bucket
    layout deterministic across a run.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = ROUND_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bounds"
            )
        self.bounds = bounds
        # per label set: [bucket counts..., +Inf count], sum, count
        self.values: Dict[LabelKey, Dict[str, Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        cell = self.values.get(key)
        if cell is None:
            cell = self.values[key] = {
                "buckets": [0] * (len(self.bounds) + 1),
                "sum": 0.0,
                "count": 0,
            }
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                cell["buckets"][i] += 1
                break
        else:
            cell["buckets"][-1] += 1
        cell["sum"] += value
        cell["count"] += 1

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        """Flatten to Prometheus-style cumulative samples."""
        out: List[Tuple[str, LabelKey, float]] = []
        for key, cell in sorted(self.values.items()):
            running = 0
            for bound, n in zip(self.bounds, cell["buckets"]):
                running += n
                out.append(
                    (
                        f"{self.name}_bucket",
                        key + (("le", _fmt_value(bound)),),
                        float(running),
                    )
                )
            running += cell["buckets"][-1]
            out.append(
                (f"{self.name}_bucket", key + (("le", "+Inf"),), float(running))
            )
            out.append((f"{self.name}_sum", key, cell["sum"]))
            out.append((f"{self.name}_count", key, float(cell["count"])))
        return out


def _fmt_value(v: float) -> str:
    """Deterministic number formatting: integers without the ``.0``."""
    return str(int(v)) if float(v).is_integer() else repr(float(v))


class MetricsRegistry:
    """Get-or-create registry of metric families, iterated sorted."""

    def __init__(self) -> None:
        self._families: Dict[str, _Metric] = {}

    def _family(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._families.get(name)
        if metric is None:
            metric = self._families[name] = cls(name, help, **kwargs)
        else:
            metric._check(cls.kind)
            if kwargs.get("buckets") is not None and tuple(
                float(b) for b in kwargs["buckets"]
            ) != metric.bounds:
                raise ValueError(
                    f"histogram {name!r} re-declared with different bounds"
                )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = ROUND_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    def families(self) -> List[_Metric]:
        return [self._families[k] for k in sorted(self._families)]

    def as_samples(self) -> List[Tuple[str, LabelKey, float]]:
        """Every sample of every family, deterministically ordered."""
        out: List[Tuple[str, LabelKey, float]] = []
        for family in self.families():
            out.extend(family.samples())
        return out

    def __len__(self) -> int:
        return len(self._families)


# --------------------------------------------------------------------- #
# compatibility facade over SimStats / transport link ledgers
# --------------------------------------------------------------------- #


def merge_counter_tree(
    mine: Dict[str, Any], other: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge a two-level counter tree (``section -> leaf -> n``) in place.

    Numeric leaves add; anything non-numeric (or a non-dict section,
    e.g. a scalar budget or a nested config blob) is overwritten by the
    newer value.  This is the single merge rule behind
    ``SimStats.absorb``'s link accounting and the registry's own
    link-stat ingestion.
    """
    for section, leaves in other.items():
        if isinstance(leaves, dict):
            dst = mine.setdefault(section, {})
            for leaf, n in leaves.items():
                prev = dst.get(leaf, 0)
                if isinstance(n, (int, float)) and isinstance(
                    prev, (int, float)
                ):
                    dst[leaf] = prev + n
                else:
                    dst[leaf] = n
        else:
            mine[section] = leaves
    return mine


def record_link_stats(
    registry: MetricsRegistry, link_stats: Dict[str, Any]
) -> None:
    """Fold a transport per-link ledger into metric families.

    ``attempts`` / ``cap_hits`` become per-link counters; the scalar
    retransmit ``budget`` becomes a gauge.  Unknown sections are
    ignored (the raw ledger stays available in run records).
    """
    attempts = registry.counter(
        "repro_transport_link_retransmit_attempts_total",
        "Retransmit attempts charged to each directed link",
    )
    for link, n in (link_stats.get("attempts") or {}).items():
        if isinstance(n, (int, float)):
            attempts.inc(n, link=link)
    cap_hits = registry.counter(
        "repro_transport_link_cap_hits_total",
        "Retransmit requests refused because the link budget was spent",
    )
    for link, n in (link_stats.get("cap_hits") or {}).items():
        if isinstance(n, (int, float)):
            cap_hits.inc(n, link=link)
    budget = link_stats.get("budget")
    if isinstance(budget, (int, float)):
        registry.gauge(
            "repro_transport_retransmit_budget",
            "Per-link retransmit budget configured on the transport",
        ).set(budget)


#: run-record ``extra`` keys exported one-to-one as counters.
_EXTRA_COUNTERS = (
    ("retransmissions", "repro_transport_retransmissions_total"),
    ("nacks", "repro_transport_nacks_total"),
    ("hedges", "repro_transport_hedges_total"),
    ("hedge_deliveries", "repro_transport_hedge_deliveries_total"),
    ("live_gaps", "repro_transport_live_gaps_total"),
    ("suspects", "repro_detector_suspects_total"),
    ("confirms", "repro_detector_confirms_total"),
    ("elections", "repro_failover_elections_total"),
    ("integrity_rejected", "repro_integrity_rejected_total"),
    ("double_counted", "repro_churn_double_counted_total"),
    ("lost_contributions", "repro_churn_lost_contributions_total"),
    ("gray_stalled", "repro_gray_stalled_copies_total"),
)


def record_run(
    registry: MetricsRegistry,
    *,
    protocol: str,
    cc_bits: Optional[float],
    rounds: Optional[float],
    flooding_rounds: Optional[float] = None,
    correct: Optional[bool] = None,
    overhead_bits: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
    link_stats: Optional[Dict[str, Any]] = None,
) -> None:
    """Fold one finished protocol run into the registry.

    This is the facade that replaces per-call-site ``SimStats`` mining:
    runner code calls it once per record and every downstream consumer
    reads the registry.
    """
    labels = {"protocol": protocol}
    runs = registry.counter("repro_runs_total", "Protocol runs recorded")
    runs.inc(**labels)
    if correct is not None:
        registry.counter(
            "repro_runs_correct_total", "Runs whose output was exact"
        ).inc(1 if correct else 0, **labels)
    if cc_bits is not None:
        registry.gauge(
            "repro_run_cc_bits", "Protocol CC of the last run (bits)"
        ).set(cc_bits, **labels)
        registry.histogram(
            "repro_run_cc_bits_hist",
            "Distribution of protocol CC across runs (bits)",
            buckets=BITS_BUCKETS,
        ).observe(cc_bits, **labels)
    if rounds is not None:
        registry.gauge(
            "repro_run_rounds", "Simulator rounds of the last run"
        ).set(rounds, **labels)
        registry.histogram(
            "repro_run_rounds_hist",
            "Distribution of simulator rounds across runs",
            buckets=ROUND_BUCKETS,
        ).observe(rounds, **labels)
    if flooding_rounds is not None:
        registry.gauge(
            "repro_run_flooding_rounds",
            "TC of the last run, in flooding rounds",
        ).set(flooding_rounds, **labels)
    if overhead_bits is not None:
        registry.counter(
            "repro_recovery_overhead_bits_total",
            "Recovery/bookkeeping bits excluded from protocol CC",
        ).inc(overhead_bits, **labels)
    for key, metric_name in _EXTRA_COUNTERS:
        value = (extra or {}).get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            registry.counter(metric_name, f"Run-record `{key}` tally").inc(
                value, **labels
            )
    if link_stats:
        record_link_stats(registry, link_stats)


def record_unit_latency(
    registry: MetricsRegistry, samples: Iterable[float], jobs: int = 1
) -> None:
    """Fold executed-unit wall latencies into the registry.

    Wall clocks are the one non-deterministic metric domain; these
    families appear only for engine (multi-unit) runs and are excluded
    from byte-identity guarantees.  Safe to call with zero samples.
    """
    hist = registry.histogram(
        "repro_exec_unit_wall_seconds",
        "Executed work-unit wall latency (seconds)",
        buckets=WALL_BUCKETS,
    )
    ordered = sorted(samples)
    for s in ordered:
        hist.observe(s)
    registry.gauge("repro_exec_jobs", "Worker pool size").set(jobs)
    if not ordered:
        return  # zero completed units: no percentiles to report
    for q, name in ((50.0, "p50"), (95.0, "p95")):
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        value = ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)
        registry.gauge(
            f"repro_exec_unit_wall_{name}_seconds",
            f"{name} executed-unit wall latency (seconds)",
        ).set(value)
