"""Zero-dependency span tracing with deterministic identities.

A :class:`SpanTracer` records *spans* (named intervals with
parent/child nesting) and *instant events* against two clock domains:

* the **logical-round clock** — the simulator round (or transport
  logical round) at which a span begins/ends.  This is the primary
  clock: it is deterministic, so replaying a run with the same seed
  reproduces the exact same trace bytes.
* the **monotonic wall clock** — ``time.monotonic_ns()`` captured at
  begin/end.  Wall durations are advisory (profiling only) and are
  excluded from deterministic exports by default.

Span identities are derived from the run seed (a SHA-256 trace id
prefix plus a sequential counter), never from wall time or ``id()``,
so two runs with the same seed emit byte-identical span ids.

Hot-path contract
-----------------
Instrumented modules guard every call site with the **module-level**
:data:`enabled` flag (and :data:`messages` for message-level events)::

    from ..obs import spans as _spans
    ...
    if _spans.enabled:
        _spans.active().begin("agg.tree_construction", ...)

When tracing is off the cost is a single module-attribute load and a
falsy branch — no allocation, no function call.  Activation is
process-local: worker processes of the parallel engine never see the
parent's tracer (engine-level unit spans are recorded in the parent).
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DETAIL_LEVELS",
    "SpanTracer",
    "activate",
    "active",
    "deactivate",
    "enabled",
    "messages",
]

#: Recognised ``--trace-detail`` levels, coarsest first.
DETAIL_LEVELS = ("off", "phases", "messages")

# Module-level guards: instrumentation sites test these bare booleans so
# that disabled tracing costs one attribute load on the hot path.
enabled: bool = False
messages: bool = False
_tracer: Optional["SpanTracer"] = None


def active() -> Optional["SpanTracer"]:
    """The currently activated tracer, or ``None``."""
    return _tracer


def activate(tracer: "SpanTracer") -> None:
    """Install ``tracer`` as the process-wide active tracer.

    The :data:`enabled` / :data:`messages` guards follow the tracer's
    detail level: ``off`` installs the tracer without arming any
    instrumentation (metrics may still be recorded at run end).
    """
    global _tracer, enabled, messages
    _tracer = tracer
    enabled = tracer.detail in ("phases", "messages")
    messages = tracer.detail == "messages"


def deactivate() -> None:
    """Disarm all instrumentation and drop the active tracer."""
    global _tracer, enabled, messages
    _tracer = None
    enabled = False
    messages = False


class SpanTracer:
    """Record nested spans and instant events with deterministic ids.

    Spans live on per-``(pid, tid)`` stacks — begins and ends must
    match per track, which is what makes the Chrome ``B``/``E`` stream
    balanced by construction.  ``pid`` tracks a process-like grouping
    (one per executed work unit; 0 for the top-level run), ``tid`` a
    thread-like one (the node id for simulator spans).
    """

    EXEC_PID = 1  #: reserved pid for engine-level unit lifecycle spans

    def __init__(self, seed: Any = 0, detail: str = "phases") -> None:
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"trace detail must be one of {DETAIL_LEVELS}, got {detail!r}"
            )
        self.seed = seed
        self.detail = detail
        self.trace_id = hashlib.sha256(
            f"repro-trace:{seed!r}".encode()
        ).hexdigest()[:12]
        self.spans: List[Dict[str, Any]] = []  # closed spans, close order
        self.events: List[Dict[str, Any]] = []  # instant events, emit order
        self.processes: Dict[int, str] = {0: "run"}
        self.max_round: float = 0.0
        self._next_sid = 0
        self._next_pid = 2  # 0 = run, 1 = exec engine
        self._pid = 0  # default pid for spans that don't pass one
        self._pid_stack: List[int] = []
        self._stacks: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
        self._oplog: List[Dict[str, Any]] = []  # chronological B/E/i ops

    # -- identity ------------------------------------------------------ #

    def _sid(self) -> str:
        sid = f"{self.trace_id}:{self._next_sid}"
        self._next_sid += 1
        return sid

    # -- clocks -------------------------------------------------------- #

    def _clock(self, round: Optional[float]) -> float:
        if round is None:
            return self.max_round
        rnd = float(round)
        if rnd > self.max_round:
            self.max_round = rnd
        return rnd

    # -- process grouping --------------------------------------------- #

    def push_process(self, name: str) -> int:
        """Open a process-like grouping (one per executed work unit).

        Returns the assigned pid; spans begun without an explicit
        ``pid`` land in the innermost open process.
        """
        pid = self._next_pid
        self._next_pid += 1
        self.processes[pid] = name
        self._pid_stack.append(self._pid)
        self._pid = pid
        return pid

    def pop_process(self) -> None:
        if self._pid_stack:
            self._pid = self._pid_stack.pop()

    # -- spans --------------------------------------------------------- #

    def begin(
        self,
        name: str,
        cat: str = "sim",
        tid: int = 0,
        round: Optional[float] = None,
        pid: Optional[int] = None,
        **attrs: Any,
    ) -> str:
        """Open a span on track ``(pid, tid)`` at the given round."""
        p = self._pid if pid is None else pid
        t0 = self._clock(round)
        stack = self._stacks.setdefault((p, tid), [])
        span = {
            "sid": self._sid(),
            "parent": stack[-1]["sid"] if stack else None,
            "name": name,
            "cat": cat,
            "pid": p,
            "tid": tid,
            "t0": t0,
            "t1": None,
            "attrs": dict(attrs),
            "wall0_ns": time.monotonic_ns(),
            "wall_ns": None,
        }
        stack.append(span)
        self._oplog.append(
            {
                "ph": "B",
                "name": name,
                "cat": cat,
                "pid": p,
                "tid": tid,
                "ts": t0,
                "args": dict(attrs),
            }
        )
        return span["sid"]

    def end(
        self,
        tid: int = 0,
        round: Optional[float] = None,
        pid: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Dict[str, Any]]:
        """Close the innermost open span on track ``(pid, tid)``."""
        p = self._pid if pid is None else pid
        stack = self._stacks.get((p, tid))
        if not stack:
            return None  # unmatched end: tolerate, never raise in-sim
        span = stack.pop()
        t1 = self._clock(round)
        span["t1"] = max(t1, span["t0"])
        span["wall_ns"] = time.monotonic_ns() - span.pop("wall0_ns")
        if attrs:
            span["attrs"].update(attrs)
        self.spans.append(span)
        self._oplog.append(
            {
                "ph": "E",
                "pid": p,
                "tid": tid,
                "ts": span["t1"],
                "args": dict(attrs) if attrs else {},
            }
        )
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "sim",
        tid: int = 0,
        round: Optional[float] = None,
        pid: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[str]:
        """Context-manager form: the span closes at the highest logical
        round observed inside the block (``max_round``)."""
        sid = self.begin(name, cat, tid=tid, round=round, pid=pid, **attrs)
        try:
            yield sid
        finally:
            self.end(tid=tid, round=self.max_round, pid=pid)

    def event(
        self,
        name: str,
        cat: str = "sim",
        tid: int = 0,
        round: Optional[float] = None,
        pid: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record an instant event (a point, not an interval)."""
        p = self._pid if pid is None else pid
        ts = self._clock(round)
        record = {
            "name": name,
            "cat": cat,
            "pid": p,
            "tid": tid,
            "ts": ts,
            "attrs": dict(attrs),
        }
        self.events.append(record)
        self._oplog.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "pid": p,
                "tid": tid,
                "ts": ts,
                "s": "t",
                "args": dict(attrs),
            }
        )

    # -- lifecycle ----------------------------------------------------- #

    def close_all(self) -> int:
        """Close every still-open span at ``max_round`` (deepest first).

        Keeps exports balanced even if a run aborted mid-phase.
        Returns the number of spans force-closed.
        """
        closed = 0
        for (p, tid), stack in sorted(self._stacks.items()):
            while stack:
                self.end(tid=tid, round=self.max_round, pid=p)
                closed += 1
        return closed

    @property
    def oplog(self) -> List[Dict[str, Any]]:
        """Chronological begin/end/instant operations (Chrome order)."""
        return self._oplog
