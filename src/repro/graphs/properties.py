"""Graph property computations: BFS, distances, diameter, connectivity.

The paper's model assumes an arbitrary connected undirected topology ``G``
with known diameter ``d``, and a "remaining" graph ``H`` (failed nodes and
their incident edges deleted) whose diameter is assumed to stay within
``c * d``.  These helpers implement exactly the quantities needed there.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set


def bfs_levels(
    adjacency: Mapping[int, Sequence[int]],
    source: int,
    excluded: Optional[Set[int]] = None,
) -> Dict[int, int]:
    """Hop distances from ``source``, skipping ``excluded`` nodes.

    Returns a map containing only the nodes reachable from ``source``.
    """
    excluded = excluded or set()
    if source in excluded:
        return {}
    levels = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v in excluded or v in levels:
                continue
            levels[v] = levels[u] + 1
            queue.append(v)
    return levels


def is_connected(adjacency: Mapping[int, Sequence[int]]) -> bool:
    """Whether the whole graph is one connected component."""
    if not adjacency:
        return True
    source = next(iter(adjacency))
    return len(bfs_levels(adjacency, source)) == len(adjacency)


def component_of(
    adjacency: Mapping[int, Sequence[int]],
    source: int,
    excluded: Optional[Set[int]] = None,
) -> Set[int]:
    """The connected component containing ``source`` after removing ``excluded``."""
    return set(bfs_levels(adjacency, source, excluded))


def eccentricity(
    adjacency: Mapping[int, Sequence[int]],
    source: int,
    excluded: Optional[Set[int]] = None,
) -> int:
    """Largest hop distance from ``source`` within its component."""
    levels = bfs_levels(adjacency, source, excluded)
    if not levels:
        raise ValueError(f"source {source} is excluded or absent")
    return max(levels.values())


def diameter(
    adjacency: Mapping[int, Sequence[int]],
    nodes: Optional[Iterable[int]] = None,
) -> int:
    """Exact diameter of the (sub)graph induced by ``nodes`` (default: all).

    Raises ValueError if the induced subgraph is disconnected or empty.
    """
    if nodes is None:
        included = set(adjacency)
    else:
        included = set(nodes)
    if not included:
        raise ValueError("cannot take the diameter of an empty graph")
    excluded = set(adjacency) - included
    best = 0
    seen_size = None
    for u in included:
        levels = bfs_levels(adjacency, u, excluded)
        if seen_size is None:
            seen_size = len(levels)
            if seen_size != len(included):
                raise ValueError("induced subgraph is disconnected")
        best = max(best, max(levels.values()))
    return best


def subgraph_without(
    adjacency: Mapping[int, Sequence[int]], removed: Set[int]
) -> Dict[int, List[int]]:
    """Adjacency of the graph with ``removed`` nodes (and their edges) deleted."""
    return {
        u: [v for v in vs if v not in removed]
        for u, vs in adjacency.items()
        if u not in removed
    }


def edge_count(adjacency: Mapping[int, Sequence[int]]) -> int:
    """Number of undirected edges."""
    return sum(len(vs) for vs in adjacency.values()) // 2


def edges(adjacency: Mapping[int, Sequence[int]]) -> List[tuple]:
    """All undirected edges as sorted ``(u, v)`` pairs with ``u < v``."""
    out = []
    for u, vs in adjacency.items():
        for v in vs:
            if u < v:
                out.append((u, v))
    return sorted(out)


def validate_undirected(adjacency: Mapping[int, Sequence[int]]) -> None:
    """Raise ValueError unless ``adjacency`` is a simple undirected graph."""
    for u, vs in adjacency.items():
        seen = set()
        for v in vs:
            if v == u:
                raise ValueError(f"self-loop at node {u}")
            if v in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            seen.add(v)
            if v not in adjacency:
                raise ValueError(f"edge ({u}, {v}) points outside the graph")
            if u not in adjacency[v]:
                raise ValueError(f"edge ({u}, {v}) is not symmetric")
