"""Topology serialization: edge lists, JSON, and Graphviz DOT export.

Real deployments describe their topology in files; these helpers round-trip
:class:`repro.graphs.topology.Topology` through the common plain-text
formats so experiments can run against externally captured networks.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Union

from .topology import Topology


def to_edge_list(topology: Topology) -> str:
    """Render as whitespace-separated edge lines, with a header comment.

    Format::

        # name=<name> root=<root> n=<N>
        0 1
        0 5
        ...
    """
    lines = [
        f"# name={topology.name} root={topology.root} n={topology.n_nodes}"
    ]
    lines.extend(f"{u} {v}" for u, v in topology.edges())
    return "\n".join(lines) + "\n"


def from_edge_list(text: str, name: Optional[str] = None, root: int = 0) -> Topology:
    """Parse the :func:`to_edge_list` format (header optional).

    Isolated nodes cannot be expressed in an edge list; the paper's model
    requires connectivity anyway, so this is not a restriction.
    """
    parsed_name, parsed_root = name, root
    adjacency: Dict[int, List[int]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("name=") and name is None:
                    parsed_name = token[5:]
                elif token.startswith("root="):
                    parsed_root = int(token[5:])
            continue
        u_str, v_str = line.split()
        u, v = int(u_str), int(v_str)
        adjacency.setdefault(u, [])
        adjacency.setdefault(v, [])
        if v not in adjacency[u]:
            adjacency[u].append(v)
            adjacency[v].append(u)
    if not adjacency:
        raise ValueError("edge list contains no edges")
    return Topology(adjacency, name=parsed_name or "edge_list", root=parsed_root)


def to_json(topology: Topology) -> str:
    """Serialize to a JSON document (adjacency, name, root)."""
    return json.dumps(
        {
            "name": topology.name,
            "root": topology.root,
            "adjacency": {str(u): list(vs) for u, vs in topology.adjacency.items()},
        },
        indent=2,
        sort_keys=True,
    )


def from_json(text: str) -> Topology:
    """Parse the :func:`to_json` format."""
    doc = json.loads(text)
    adjacency = {int(u): list(vs) for u, vs in doc["adjacency"].items()}
    return Topology(adjacency, name=doc.get("name", "json"), root=doc.get("root", 0))


def to_dot(topology: Topology, highlight: Optional[set] = None) -> str:
    """Render as Graphviz DOT, optionally highlighting a node set (e.g.
    crashed nodes) in red.  The root is drawn as a double circle."""
    highlight = highlight or set()
    lines = [f'graph "{topology.name}" {{']
    for u in topology.nodes():
        attrs = []
        if u == topology.root:
            attrs.append("shape=doublecircle")
        if u in highlight:
            attrs.append("color=red")
            attrs.append("style=filled")
            attrs.append("fillcolor=mistyrose")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {u}{attr_text};")
    for u, v in topology.edges():
        lines.append(f"  {u} -- {v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save(topology: Topology, path: str) -> None:
    """Write a topology to ``path``; format chosen by extension
    (``.json``, ``.dot``, anything else = edge list)."""
    if path.endswith(".json"):
        text = to_json(topology)
    elif path.endswith(".dot"):
        text = to_dot(topology)
    else:
        text = to_edge_list(topology)
    with open(path, "w") as fh:
        fh.write(text)


def load(path: str) -> Topology:
    """Read a topology from ``path`` (``.json`` or edge-list format)."""
    with open(path) as fh:
        text = fh.read()
    if path.endswith(".json"):
        return from_json(text)
    return from_edge_list(text)
