"""Topology generators for the paper's experiments.

The paper imposes no restriction on the topology beyond connectivity, and
motivates the problem with wireless sensor networks (base station root) and
wireless ad hoc networks (gateway root).  These generators cover the regular
shapes used in analysis (paths, cycles, grids, trees) and the random shapes
used to emulate deployments (random geometric = sensor field, G(n, p),
random regular = expander-like).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .topology import Topology


def _empty(n: int) -> Dict[int, List[int]]:
    return {u: [] for u in range(n)}


def _add_edge(adj: Dict[int, List[int]], u: int, v: int) -> None:
    if u == v or v in adj[u]:
        return
    adj[u].append(v)
    adj[v].append(u)


def path_graph(n: int) -> Topology:
    """A path ``0 - 1 - ... - n-1`` rooted at one end (diameter ``n - 1``)."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    adj = _empty(n)
    for u in range(n - 1):
        _add_edge(adj, u, u + 1)
    return Topology(adj, name=f"path({n})")


def cycle_graph(n: int) -> Topology:
    """A cycle on ``n`` nodes (diameter ``n // 2``)."""
    if n < 3:
        raise ValueError("need at least 3 nodes")
    adj = _empty(n)
    for u in range(n):
        _add_edge(adj, u, (u + 1) % n)
    return Topology(adj, name=f"cycle({n})")


def star_graph(n: int) -> Topology:
    """A star with the root at the hub (diameter 2)."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    adj = _empty(n)
    for u in range(1, n):
        _add_edge(adj, 0, u)
    return Topology(adj, name=f"star({n})")


def complete_graph(n: int) -> Topology:
    """The complete graph on ``n`` nodes (diameter 1)."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    adj = _empty(n)
    for u in range(n):
        for v in range(u + 1, n):
            _add_edge(adj, u, v)
    return Topology(adj, name=f"complete({n})")


def grid_graph(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` grid rooted at a corner."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("need at least 2 nodes")
    adj = _empty(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                _add_edge(adj, u, u + 1)
            if r + 1 < rows:
                _add_edge(adj, u, u + cols)
    return Topology(adj, name=f"grid({rows}x{cols})")


def balanced_tree(branching: int, n: int) -> Topology:
    """A complete ``branching``-ary tree truncated to ``n`` nodes, rooted at 0."""
    if branching < 1 or n < 2:
        raise ValueError("branching >= 1 and n >= 2 required")
    adj = _empty(n)
    for u in range(1, n):
        parent = (u - 1) // branching
        _add_edge(adj, u, parent)
    return Topology(adj, name=f"tree(b={branching},n={n})")


def caterpillar_graph(spine: int, legs_per_node: int) -> Topology:
    """A path ("spine") with ``legs_per_node`` leaves hanging off each node.

    Useful for adversary constructions: spine nodes are articulation points
    whose failure disconnects many leaves.
    """
    if spine < 2 or legs_per_node < 0:
        raise ValueError("spine >= 2 and legs_per_node >= 0 required")
    n = spine * (1 + legs_per_node)
    adj = _empty(n)
    for u in range(spine - 1):
        _add_edge(adj, u, u + 1)
    leaf = spine
    for u in range(spine):
        for _ in range(legs_per_node):
            _add_edge(adj, u, leaf)
            leaf += 1
    return Topology(adj, name=f"caterpillar({spine},{legs_per_node})")


def barbell_graph(clique: int, bridge: int) -> Topology:
    """Two cliques of size ``clique`` joined by a path of ``bridge`` nodes.

    The bridge is a communication bottleneck — the shape that makes the
    bottleneck-node CC definition bite.
    """
    if clique < 2 or bridge < 1:
        raise ValueError("clique >= 2 and bridge >= 1 required")
    n = 2 * clique + bridge
    adj = _empty(n)
    for u in range(clique):
        for v in range(u + 1, clique):
            _add_edge(adj, u, v)
    offset = clique + bridge
    for u in range(offset, offset + clique):
        for v in range(u + 1, offset + clique):
            _add_edge(adj, u, v)
    chain = [clique - 1] + list(range(clique, clique + bridge)) + [offset]
    for a, b in zip(chain, chain[1:]):
        _add_edge(adj, a, b)
    return Topology(adj, name=f"barbell({clique},{bridge})")


def random_geometric(
    n: int,
    radius: Optional[float] = None,
    rng: Optional[random.Random] = None,
    max_tries: int = 50,
) -> Topology:
    """A random geometric graph in the unit square — a synthetic sensor field.

    Nodes connect when within ``radius``; the default radius is slightly
    above the connectivity threshold ``sqrt(ln n / (pi n))``.  The radius is
    grown geometrically until the sample is connected.  The root is the node
    closest to the corner (0, 0), playing the base station.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng or random.Random(0)
    r = radius or 1.3 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))
    points = [(rng.random(), rng.random()) for _ in range(n)]
    for attempt in range(max_tries):
        adj = _empty(n)
        for u in range(n):
            for v in range(u + 1, n):
                dx = points[u][0] - points[v][0]
                dy = points[u][1] - points[v][1]
                if dx * dx + dy * dy <= r * r:
                    _add_edge(adj, u, v)
        try:
            base = min(range(n), key=lambda u: points[u][0] + points[u][1])
            topo = Topology(adj, name=f"geometric({n})", root=base)
            topo.positions = points  # type: ignore[attr-defined]
            return topo
        except ValueError:
            r *= 1.25
    raise RuntimeError("failed to build a connected geometric graph")


def gnp_connected(
    n: int,
    p: Optional[float] = None,
    rng: Optional[random.Random] = None,
    max_tries: int = 200,
) -> Topology:
    """A connected Erdos-Renyi ``G(n, p)`` sample (re-sampled until connected).

    The default ``p`` is twice the connectivity threshold ``ln n / n``.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng or random.Random(0)
    prob = p if p is not None else min(1.0, 2.0 * math.log(max(n, 2)) / n)
    for _ in range(max_tries):
        adj = _empty(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < prob:
                    _add_edge(adj, u, v)
        try:
            return Topology(adj, name=f"gnp({n},{prob:.3f})")
        except ValueError:
            prob = min(1.0, prob * 1.2)
    raise RuntimeError("failed to build a connected G(n, p) graph")


def random_tree(n: int, rng: Optional[random.Random] = None) -> Topology:
    """A uniformly random recursive tree on ``n`` nodes rooted at 0."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng or random.Random(0)
    adj = _empty(n)
    for u in range(1, n):
        _add_edge(adj, u, rng.randrange(u))
    return Topology(adj, name=f"random_tree({n})")


def random_regular(
    n: int, degree: int, rng: Optional[random.Random] = None, max_tries: int = 200
) -> Topology:
    """A random ``degree``-regular connected graph (expander-like, low diameter).

    Uses the pairing model with rejection; requires ``n * degree`` even.
    """
    if n < 2 or degree < 2 or degree >= n:
        raise ValueError("need n >= 2 and 2 <= degree < n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = rng or random.Random(0)
    for _ in range(max_tries):
        stubs = [u for u in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        adj = _empty(n)
        ok = True
        for a, b in zip(stubs[::2], stubs[1::2]):
            if a == b or b in adj[a]:
                ok = False
                break
            _add_edge(adj, a, b)
        if not ok:
            continue
        try:
            return Topology(adj, name=f"regular({n},{degree})")
        except ValueError:
            continue
    raise RuntimeError("failed to build a connected random regular graph")


def clustered_graph(
    n_clusters: int,
    cluster_size: int,
    rng: Optional[random.Random] = None,
) -> Topology:
    """Dense clusters joined by a backbone ring — a two-tier ad hoc network.

    Node 0 (the root/gateway) sits in cluster 0.  Each cluster is a clique;
    one designated head per cluster joins the backbone ring.
    """
    if n_clusters < 2 or cluster_size < 2:
        raise ValueError("need at least 2 clusters of size >= 2")
    rng = rng or random.Random(0)
    n = n_clusters * cluster_size
    adj = _empty(n)
    heads = []
    for c in range(n_clusters):
        members = list(range(c * cluster_size, (c + 1) * cluster_size))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                _add_edge(adj, u, v)
        heads.append(members[0])
    for i, head in enumerate(heads):
        _add_edge(adj, head, heads[(i + 1) % n_clusters])
    return Topology(adj, name=f"clustered({n_clusters}x{cluster_size})")


def hypercube_graph(dimension: int) -> Topology:
    """The ``dimension``-dimensional hypercube (diameter = dimension).

    Low diameter with high symmetry — the regime where the ``log N``
    terms of the bounds dominate the ``f/b`` term.
    """
    if dimension < 1:
        raise ValueError("dimension >= 1 required")
    n = 1 << dimension
    adj = _empty(n)
    for u in range(n):
        for bit in range(dimension):
            _add_edge(adj, u, u ^ (1 << bit))
    return Topology(adj, name=f"hypercube({dimension})")


def torus_graph(rows: int, cols: int) -> Topology:
    """A 2-D torus (grid with wraparound): 4-regular, no border effects."""
    if rows < 3 or cols < 3:
        raise ValueError("need rows, cols >= 3 for a simple torus")
    adj = _empty(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            _add_edge(adj, u, r * cols + (c + 1) % cols)
            _add_edge(adj, u, ((r + 1) % rows) * cols + c)
    return Topology(adj, name=f"torus({rows}x{cols})")


def cluster_line_graph(n_clusters: int, cluster_size: int) -> Topology:
    """Cliques strung on a line — the extreme bottleneck shape.

    Unlike :func:`clustered_graph` (backbone ring), consecutive cluster
    heads form a path, so a single head failure partitions everything
    beyond it.  Useful for partition-heavy correctness tests and for the
    cut-simulation harness (the line is the cut).
    """
    if n_clusters < 2 or cluster_size < 2:
        raise ValueError("need at least 2 clusters of size >= 2")
    n = n_clusters * cluster_size
    adj = _empty(n)
    heads = []
    for c in range(n_clusters):
        members = list(range(c * cluster_size, (c + 1) * cluster_size))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                _add_edge(adj, u, v)
        heads.append(members[0])
    for a, b in zip(heads, heads[1:]):
        _add_edge(adj, a, b)
    return Topology(adj, name=f"cluster_line({n_clusters}x{cluster_size})")


def lollipop_graph(clique: int, tail: int) -> Topology:
    """A clique with a path tail, rooted at the tail's far end.

    Maximizes the distance between the root and the dense region —
    adversarial for tree-aggregation depth.
    """
    if clique < 2 or tail < 1:
        raise ValueError("need clique >= 2 and tail >= 1")
    n = clique + tail
    adj = _empty(n)
    # Tail: nodes 0..tail-1, root at 0; clique: tail..n-1.
    for u in range(tail - 1):
        _add_edge(adj, u, u + 1)
    _add_edge(adj, tail - 1, tail)
    for u in range(tail, n):
        for v in range(u + 1, n):
            _add_edge(adj, u, v)
    return Topology(adj, name=f"lollipop({clique},{tail})")


#: Name -> factory for the standard experiment suite (all take ``n`` and rng).
def standard_suite(n: int, rng: Optional[random.Random] = None) -> List[Topology]:
    """A diverse bundle of topologies of ~``n`` nodes for sweep experiments."""
    rng = rng or random.Random(0)
    side = max(2, int(math.sqrt(n)))
    topos = [
        grid_graph(side, side),
        balanced_tree(3, n),
        random_geometric(n, rng=random.Random(rng.randrange(1 << 30))),
        gnp_connected(n, rng=random.Random(rng.randrange(1 << 30))),
    ]
    return topos
