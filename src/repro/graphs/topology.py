"""The :class:`Topology` value object used across the library.

A topology bundles an undirected adjacency structure with the quantities the
paper's protocols are allowed to know: the number of nodes ``N``, the
designated root, and the diameter ``d``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import properties


class Topology:
    """A connected undirected graph with a designated root node.

    Node ids are the integers ``0 .. N-1``; the root defaults to node 0
    (the paper's base station / gateway).
    """

    def __init__(
        self,
        adjacency: Mapping[int, Sequence[int]],
        name: str = "custom",
        root: int = 0,
    ) -> None:
        properties.validate_undirected(adjacency)
        if root not in adjacency:
            raise ValueError(f"root {root} is not a node of the graph")
        if not properties.is_connected(adjacency):
            raise ValueError("the paper's model requires a connected topology")
        self.adjacency: Dict[int, Tuple[int, ...]] = {
            u: tuple(sorted(vs)) for u, vs in adjacency.items()
        }
        self.name = name
        self.root = root
        self._diameter: Optional[int] = None
        self._levels: Optional[Dict[int, int]] = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``N``."""
        return len(self.adjacency)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return properties.edge_count(self.adjacency)

    @property
    def diameter(self) -> int:
        """Exact diameter ``d`` (>= 1 for any graph with >= 2 nodes)."""
        if self._diameter is None:
            self._diameter = max(1, properties.diameter(self.adjacency))
        return self._diameter

    @property
    def levels(self) -> Dict[int, int]:
        """BFS hop distance of every node from the root."""
        if self._levels is None:
            self._levels = properties.bfs_levels(self.adjacency, self.root)
        return self._levels

    def nodes(self) -> List[int]:
        """All node ids, sorted."""
        return sorted(self.adjacency)

    def non_root_nodes(self) -> List[int]:
        """All node ids except the root, sorted."""
        return [u for u in self.nodes() if u != self.root]

    def neighbours(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node``."""
        return self.adjacency[node]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self.adjacency[node])

    def edges(self) -> List[tuple]:
        """All undirected edges as sorted pairs."""
        return properties.edges(self.adjacency)

    def edges_incident(self, nodes: Iterable[int]) -> int:
        """Number of edges with at least one endpoint in ``nodes``.

        This is the paper's edge-failure count for a set of failed nodes.
        """
        failed = set(nodes)
        return sum(
            1 for (u, v) in self.edges() if u in failed or v in failed
        )

    def alive_component(self, failed: Iterable[int]) -> set:
        """Nodes still connected to the root once ``failed`` are removed."""
        failed_set = set(failed)
        if self.root in failed_set:
            raise ValueError("the root never fails in the paper's model")
        return properties.component_of(self.adjacency, self.root, failed_set)

    def remaining_diameter(self, failed: Iterable[int]) -> int:
        """Diameter of the root's component after removing ``failed`` nodes.

        This is the paper's ``H`` diameter, used to check the ``<= c*d``
        assumption.  Returns at least 1.
        """
        component = self.alive_component(failed)
        return max(1, properties.diameter(self.adjacency, component))

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, n={self.n_nodes}, "
            f"m={self.n_edges}, root={self.root})"
        )
