"""Performance-regression baselines for the benchmark harness.

Reproductions decay silently: a refactor that doubles AGG's bit cost
keeps every correctness test green.  This module pins measured costs to a
JSON baseline and flags drift:

* :func:`capture_baseline` — run the compact metric suite and write it;
* :func:`compare_to_baseline` — re-run and report per-metric ratios,
  flagging anything outside the tolerance band.

The metrics are deterministic (fixed seeds), so the comparison is exact
on one machine and meaningful across machines (bit counts and round
counts do not depend on hardware).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..adversary import random_failures
from ..core import run_agg, run_agg_veri_pair, run_algorithm1
from ..graphs import grid_graph


def _metric_suite() -> Dict[str, Callable[[], float]]:
    """Named deterministic cost probes (bits / rounds)."""

    def agg_cc_failure_free() -> float:
        topo = grid_graph(5, 5)
        return float(
            run_agg(topo, {u: 1 for u in topo.nodes()}, t=2).stats.max_bits
        )

    def agg_cc_with_failures() -> float:
        topo = grid_graph(5, 5)
        schedule = random_failures(
            topo, 6, random.Random(7), last_round=200
        )
        return float(
            run_agg(
                topo, {u: 1 for u in topo.nodes()}, t=6, schedule=schedule
            ).stats.max_bits
        )

    def pair_veri_cc() -> float:
        topo = grid_graph(5, 5)
        pair = run_agg_veri_pair(topo, {u: 1 for u in topo.nodes()}, t=3)
        return float(pair.veri_stats.max_bits)

    def algorithm1_cc() -> float:
        topo = grid_graph(5, 5)
        out = run_algorithm1(
            topo, {u: 1 for u in topo.nodes()}, f=4, b=84,
            rng=random.Random(3),
        )
        return float(out.stats.max_bits)

    def algorithm1_rounds() -> float:
        topo = grid_graph(5, 5)
        out = run_algorithm1(
            topo, {u: 1 for u in topo.nodes()}, f=4, b=84,
            rng=random.Random(3),
        )
        return float(out.rounds)

    return {
        "agg_cc_failure_free": agg_cc_failure_free,
        "agg_cc_with_failures": agg_cc_with_failures,
        "pair_veri_cc": pair_veri_cc,
        "algorithm1_cc": algorithm1_cc,
        "algorithm1_rounds": algorithm1_rounds,
    }


def measure_metrics() -> Dict[str, float]:
    """Run every probe; returns name -> measured value."""
    return {name: fn() for name, fn in _metric_suite().items()}


def capture_baseline(path: str) -> Dict[str, float]:
    """Measure and persist the baseline JSON; returns the metrics."""
    metrics = measure_metrics()
    with open(path, "w") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
    return metrics


@dataclass(frozen=True)
class Drift:
    """One metric's deviation from its baseline."""

    metric: str
    baseline: float
    measured: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.baseline

    def within(self, tolerance: float) -> bool:
        """Whether the ratio stays inside ``[1/(1+tol), 1+tol]``."""
        return 1 / (1 + tolerance) <= self.ratio <= 1 + tolerance


def compare_to_baseline(
    path: str, tolerance: float = 0.05
) -> List[Drift]:
    """Re-measure and return the metrics drifting beyond ``tolerance``.

    Unknown metrics in the baseline are ignored; metrics missing from the
    baseline are reported with baseline 0 (always flagged), so adding a
    probe forces a baseline refresh.
    """
    with open(path) as fh:
        baseline = json.load(fh)
    measured = measure_metrics()
    drifts = []
    for metric, value in measured.items():
        drift = Drift(metric, float(baseline.get(metric, 0.0)), value)
        if not drift.within(tolerance):
            drifts.append(drift)
    return drifts
