"""One-shot Markdown experiment report.

``generate_report`` runs a compact version of every experiment in the
reproduction index (E1..E12) and renders a single Markdown document with
the measured tables — the programmatic counterpart of EXPERIMENTS.md,
suitable for CI artifacts or for re-checking the reproduction on a new
machine (``repro-agg report``).

Scale is deliberately small (one topology, few seeds) so the full report
finishes in tens of seconds; the benchmarks are the heavyweight versions.
"""

from __future__ import annotations

import math
import random
import statistics
from typing import Dict, List, Optional

from ..adversary import random_failures
from ..core.caaf import COUNT, MAX, SUM
from ..core.correctness import is_correct_result
from ..extensions.quantiles import distributed_select
from ..graphs import grid_graph
from ..lowerbound import (
    WrapPositionUnionSize,
    lemma11_bound,
    random_instance,
    sperner_rank,
    union_size,
    unionsize_lower_bound,
)
from .figure1 import figure1_data
from .runner import run_protocol
from .sweep import random_schedule_factory, run_point
from .tables import format_series, format_table


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    side: int = 5,
    f: int = 6,
    seeds: int = 3,
    rng_seed: int = 0,
) -> str:
    """Run the compact experiment suite and return a Markdown report."""
    topo = grid_graph(side, side)
    seeds_range = range(seeds)
    sections: List[str] = [
        "# Reproduction report",
        "",
        f"Topology: `{topo.name}` (N={topo.n_nodes}, d={topo.diameter}); "
        f"f={f}; {seeds} seeds per point.",
        "",
    ]

    # E1: Figure 1 analytic curves.
    data = figure1_data(1024, 128, [42, 84, 168, 336])
    series = {
        k: [round(v, 1) for v in vs]
        for k, vs in data.curves.items()
        if k in ("upper_bound_new", "lower_bound_new", "gap_ratio", "polylog_ceiling")
    }
    sections.append(
        _section(
            "E1 — Figure 1 curves (N=1024, f=128)",
            format_series(data.bs, series, x_label="b"),
        )
    )

    # E4: Algorithm 1 CC vs b, measured.
    rows = []
    for b in (42, 84, 168):
        point = run_point(
            "algorithm1",
            topo,
            seeds_range,
            schedule_factory=random_schedule_factory(f, horizon=b * topo.diameter),
            f=f,
            b=b,
            coords={"b": b},
        )
        rows.append(
            {
                "b": b,
                "CC mean": round(point.cc_mean, 1),
                "correct": point.correct_rate,
            }
        )
    sections.append(
        _section("E4 — Algorithm 1 CC vs b (measured)", format_table(rows))
    )

    # E5: baselines at a glance.
    rows = []
    for name, kwargs in (
        ("bruteforce", {}),
        ("folklore", {"f": f}),
        ("tag", {}),
    ):
        point = run_point(
            name,
            topo,
            seeds_range,
            schedule_factory=random_schedule_factory(f, horizon=4 * topo.diameter),
            coords={"protocol": name},
            **kwargs,
        )
        rows.append(
            {
                "protocol": name,
                "CC mean": round(point.cc_mean, 1),
                "correct rate": point.correct_rate,
            }
        )
    sections.append(_section("E5 — baselines", format_table(rows)))

    # E9: CAAF generality.
    rng = random.Random(rng_seed)
    rows = []
    for caaf in (SUM, COUNT, MAX):
        schedule = random_failures(
            topo, f=f, rng=random.Random(rng_seed), first_round=1,
            last_round=42 * topo.diameter,
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        rec = run_protocol(
            "algorithm1",
            topo,
            inputs,
            schedule=schedule,
            f=f,
            b=42,
            caaf=caaf,
            rng=random.Random(rng_seed + 1),
        )
        rows.append(
            {"CAAF": caaf.name, "result": rec.result, "correct": rec.correct}
        )
    sections.append(_section("E9 — CAAF generality", format_table(rows)))

    # E6/E7: two-party and Sperner spot checks.
    n_tp = 1024
    rows = []
    for q in (4, 16, 64):
        x, y = random_instance(n_tp, q, rng)
        answer, tr = WrapPositionUnionSize(q).run(x, y)
        assert answer == union_size(x, y)
        rows.append(
            {
                "q": q,
                "measured bits": tr.total_bits,
                "LB n/q - logn": round(unionsize_lower_bound(n_tp, q)),
                "rank(M(q)) == q-1": sperner_rank(q) == q - 1,
                "Lemma11(n,q)": round(lemma11_bound(n_tp, q), 1),
            }
        )
    sections.append(
        _section(f"E6/E7 — two-party + Sperner (n={n_tp})", format_table(rows))
    )

    # E11: selection spot check.
    inputs = {u: rng.randint(0, 30) for u in topo.nodes()}
    k = topo.n_nodes // 2
    sel = distributed_select(topo, inputs, k=k, f=1, b=45, rng=rng)
    sections.append(
        _section(
            "E11 — selection via COUNT",
            format_table(
                [
                    {
                        "k": k,
                        "selected": sel.value,
                        "truth": sorted(inputs.values())[k - 1],
                        "probes": sel.probe_count,
                    }
                ]
            ),
        )
    )

    sections.append(
        "See EXPERIMENTS.md for the full paper-vs-measured record and\n"
        "`pytest benchmarks/ --benchmark-only` for the complete harness.\n"
    )
    return "\n".join(sections)
