"""LaTeX rendering of experiment tables and series.

The ASCII tables in :mod:`repro.analysis.tables` are terminal-first; this
module renders the same row dictionaries as LaTeX ``tabular``/``booktabs``
environments for inclusion in a write-up — the final mile of a
reproduction.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

#: Characters needing escapes inside LaTeX text cells.
_ESCAPES = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
    "\\": r"\textbackslash{}",
}


def escape(text: str) -> str:
    """Escape a string for use in LaTeX text mode."""
    return "".join(_ESCAPES.get(ch, ch) for ch in str(text))


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return r"\checkmark" if value else r"$\times$"
    if isinstance(value, float):
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    return escape(str(value))


def format_latex_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    caption: Optional[str] = None,
    label: Optional[str] = None,
    booktabs: bool = True,
) -> str:
    """Render dict rows as a LaTeX table environment.

    Numeric columns are right-aligned, text columns left-aligned; booleans
    render as check/cross marks.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to render")
    if columns is None:
        columns = list(rows[0].keys())

    def is_numeric(col: str) -> bool:
        return all(
            isinstance(row.get(col), (int, float))
            and not isinstance(row.get(col), bool)
            for row in rows
        )

    spec = "".join("r" if is_numeric(col) else "l" for col in columns)
    top, mid, bottom = (
        (r"\toprule", r"\midrule", r"\bottomrule")
        if booktabs
        else (r"\hline", r"\hline", r"\hline")
    )
    lines = [r"\begin{table}[t]", r"\centering"]
    if caption:
        lines.append(rf"\caption{{{escape(caption)}}}")
    if label:
        lines.append(rf"\label{{{label}}}")
    lines.append(rf"\begin{{tabular}}{{{spec}}}")
    lines.append(top)
    lines.append(" & ".join(escape(col) for col in columns) + r" \\")
    lines.append(mid)
    for row in rows:
        lines.append(
            " & ".join(_fmt(row.get(col, "")) for col in columns) + r" \\"
        )
    lines.append(bottom)
    lines.append(r"\end{tabular}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def format_latex_series(
    xs: Sequence[Any],
    series: Dict[str, Sequence[float]],
    x_label: str = "$b$",
    caption: Optional[str] = None,
) -> str:
    """Render aligned series (Figure-style data) as a LaTeX table."""
    rows = []
    for i, x in enumerate(xs):
        row: Dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_latex_table(rows, caption=caption)
