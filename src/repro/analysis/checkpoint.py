"""JSONL checkpointing for crash-safe sweeps.

A sweep over ``coords x seeds`` can run for hours; a crash (or a ``kill``)
should not discard completed runs.  :class:`SweepCheckpoint` appends each
finished :class:`repro.analysis.runner.RunRecord` to a JSONL file, one
self-describing line per run, keyed by ``(protocol, topology, seed,
coords)``.  On resume the file is replayed: already-completed keys are
served from the checkpoint and only missing runs execute, so an
interrupted-and-resumed sweep produces exactly the record set of an
uninterrupted one.

Crash-safety details:

* every line is flushed (+``fsync``) as it is written, so at most the
  in-flight run is lost;
* a truncated *final* line (the process died mid-write, leaving no
  trailing newline) is expected damage and is dropped silently on load;
* a corrupt line anywhere *else* is not a crash artifact — it means the
  file was edited, merged, or corrupted.  Those lines are counted and
  reported with their line numbers (a :class:`UserWarning` by default,
  ``ValueError`` with ``strict=True``) instead of vanishing;
* keys are canonical JSON (sorted keys, tuples listified), so the same
  logical run always maps to the same key across processes.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .runner import RunRecord

#: RunRecord fields restored positionally-by-name on load.
_RECORD_FIELDS = (
    "protocol",
    "topology",
    "n_nodes",
    "diameter",
    "f_budget",
    "f_actual",
    "result",
    "correct",
    "cc_bits",
    "rounds",
    "flooding_rounds",
    "extra",
    "error",
    "error_kind",
    "attempts",
    "seed",
)


def _listify(value: Any) -> Any:
    """Canonicalize for JSON round-trips: tuples become lists, recursively."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    if isinstance(value, list):
        return [_listify(v) for v in value]
    if isinstance(value, dict):
        return {k: _listify(v) for k, v in value.items()}
    return value


def record_to_jsonable(record: RunRecord) -> Dict[str, Any]:
    """A JSON-serializable dict that round-trips through
    :func:`record_from_jsonable`."""
    return {
        field: _listify(getattr(record, field)) for field in _RECORD_FIELDS
    }


def record_from_jsonable(data: Dict[str, Any]) -> RunRecord:
    """Rebuild a :class:`RunRecord` saved by :func:`record_to_jsonable`."""
    kwargs = {field: data.get(field) for field in _RECORD_FIELDS}
    kwargs["extra"] = dict(kwargs.get("extra") or {})
    if kwargs.get("attempts") is None:
        kwargs["attempts"] = 1
    return RunRecord(**kwargs)


def make_key(
    protocol: str,
    topology_name: str,
    seed: Optional[int],
    coords: Optional[Dict[str, Any]] = None,
) -> str:
    """Canonical identity of one run within a sweep.

    Two runs with the same key are the same logical experiment, so a
    checkpointed record can stand in for re-executing.
    """
    return json.dumps(
        {
            "protocol": protocol,
            "topology": topology_name,
            "seed": seed,
            "coords": _listify(coords or {}),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep runs.

    Usage::

        ckpt = SweepCheckpoint(path)           # loads any prior progress
        if (rec := ckpt.get(key)) is None:
            rec = safe_run_protocol(...)
            ckpt.put(key, rec)

    The file stays open in append mode between ``put`` calls; call
    :meth:`close` (or use as a context manager) when the sweep finishes.

    ``strict=True`` turns corrupt mid-file lines into a ``ValueError``
    (naming the file and line numbers) instead of a warning; either way
    the skipped 1-based line numbers are kept in :attr:`skipped_lines`.
    A torn final line — crash mid-write, recognizable by the missing
    trailing newline — is dropped silently in both modes: that run simply
    re-executes.
    """

    def __init__(self, path: str, strict: bool = False) -> None:
        self.path = path
        self.strict = strict
        self.skipped_lines: List[int] = []
        self._done: Dict[str, RunRecord] = {}
        self._fh = None
        self._load()

    # ------------------------------------------------------------------ #
    # Loading.
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            data = fh.read()
        torn_final = bool(data) and not data.endswith("\n")
        lines = data.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = record_from_jsonable(entry["record"])
            except (json.JSONDecodeError, KeyError, TypeError):
                if torn_final and lineno == len(lines):
                    # Crash mid-write: expected damage, the run the line
                    # described simply re-executes.
                    continue
                self.skipped_lines.append(lineno)
                continue
            self._done[key] = record
        if self.skipped_lines:
            detail = (
                f"{self.path}: {len(self.skipped_lines)} corrupt checkpoint "
                f"line(s) skipped (line "
                f"{', '.join(map(str, self.skipped_lines))}); the runs they "
                "described will re-execute"
            )
            if self.strict:
                raise ValueError(detail)
            warnings.warn(detail, stacklevel=3)

    # ------------------------------------------------------------------ #
    # Queries and writes.
    # ------------------------------------------------------------------ #

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def __len__(self) -> int:
        return len(self._done)

    def get(self, key: str) -> Optional[RunRecord]:
        """The checkpointed record for ``key``, or None if not yet run."""
        return self._done.get(key)

    def put(self, key: str, record: RunRecord) -> None:
        """Persist one completed run; durable once the call returns."""
        if self._fh is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {"key": key, "record": record_to_jsonable(record)},
            sort_keys=True,
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._done[key] = record

    def records(self) -> Iterator[Tuple[str, RunRecord]]:
        """All checkpointed ``(key, record)`` pairs (insertion order)."""
        return iter(self._done.items())

    def close(self) -> None:
        """Close the append handle (records stay loaded for queries)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
