"""Experiment harness: runners, sweeps, tables, and Figure 1 regeneration."""

from .asciiplot import plot_series, sparkline
from .checkpoint import (
    SweepCheckpoint,
    make_key,
    record_from_jsonable,
    record_to_jsonable,
)
from .figure1 import Figure1Data, Figure1Measured, figure1_data, figure1_measured
from .fitting import (
    FitResult,
    fit_affine,
    fit_power_law,
    fit_theorem1_b_sweep,
    shape_report,
)
from .latex import escape, format_latex_series, format_latex_table
from .regression import Drift, capture_baseline, compare_to_baseline, measure_metrics
from .registry import EXPERIMENTS, Experiment, by_id, index_table
from .report import generate_report
from .runner import (
    RunRecord,
    RunTimeout,
    error_record,
    make_inputs,
    run_protocol,
    safe_run_protocol,
    wall_clock_limit,
)
from .statistics import (
    Summary,
    bootstrap_ci,
    geometric_mean,
    significantly_less,
    summarize,
)
from .sweep import (
    SweepPoint,
    aggregate,
    random_schedule_factory,
    run_point,
    sweep_b,
    sweep_f,
)
from .tables import format_series, format_table

__all__ = [
    "Drift",
    "EXPERIMENTS",
    "Experiment",
    "capture_baseline",
    "compare_to_baseline",
    "measure_metrics",
    "Figure1Data",
    "Figure1Measured",
    "FitResult",
    "by_id",
    "escape",
    "format_latex_series",
    "format_latex_table",
    "index_table",
    "RunRecord",
    "RunTimeout",
    "SweepCheckpoint",
    "error_record",
    "fit_affine",
    "fit_power_law",
    "fit_theorem1_b_sweep",
    "generate_report",
    "plot_series",
    "shape_report",
    "sparkline",
    "Summary",
    "SweepPoint",
    "aggregate",
    "bootstrap_ci",
    "geometric_mean",
    "significantly_less",
    "summarize",
    "figure1_data",
    "figure1_measured",
    "format_series",
    "format_table",
    "make_inputs",
    "make_key",
    "random_schedule_factory",
    "record_from_jsonable",
    "record_to_jsonable",
    "run_point",
    "run_protocol",
    "safe_run_protocol",
    "sweep_b",
    "sweep_f",
    "wall_clock_limit",
]
