"""Uniform experiment runner over all protocols in the library.

One call = one protocol execution on one (topology, inputs, schedule) tuple,
returning a flat :class:`RunRecord` with the paper's two costs (CC in bits
at the bottleneck node, TC in rounds/flooding rounds) plus correctness per
the Section 2 oracle.

Two layers:

* :func:`run_protocol` — one execution, raising on any problem.  With
  ``strict=True`` (the default) the configuration is pre-validated against
  every Section 2 model assumption and fails fast with
  :class:`repro.sim.validation.Violation` diagnostics instead of a
  confusing wrong sum.  Fault injectors / runtime monitors plug in via
  ``injectors`` / ``monitors`` / ``strict_monitors``.
* :func:`safe_run_protocol` — the crash-safe wrapper sweeps use: per-run
  wall-clock timeout, bounded retry with reseeding, and structured error
  capture — a failed run becomes an error *row* (``error`` /
  ``error_kind`` set) instead of a crashed sweep.  With ``capture_dir``
  set, every failing run (error row, incorrect grade, or recorded monitor
  violation) is additionally captured as a deterministic repro bundle
  (:mod:`repro.sim.recorder`) for later :mod:`repro.sim.replay` /
  :mod:`repro.adversary.shrink` forensics; the bundle path lands in
  ``record.extra["bundle"]``.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from ..adversary.schedule import FailureSchedule
from ..obs import metrics as _obs_metrics
from ..baselines.bruteforce import run_bruteforce
from ..baselines.folklore import run_folklore, run_plain_tag
from ..core.caaf import CAAF, SUM
from ..core.correctness import is_correct_result
from ..core.unknown_f import run_unknown_f
from ..core.algorithm1 import run_algorithm1
from ..core.veri import run_agg_veri_pair
from ..graphs.topology import Topology
from ..sim.monitors import InvariantViolation, standard_monitors, violations_of


@dataclass
class RunRecord:
    """Flat result row for tables and benches.

    ``error`` / ``error_kind`` are set (and ``result`` is None) when the
    run was captured by :func:`safe_run_protocol` instead of completing;
    ``attempts`` counts executions including retries; ``seed`` is the
    sweep seed that produced the row (when run through a sweep).
    ``as_dict`` omits these bookkeeping columns while they hold their
    clean-run defaults, so healthy tables look exactly as before.
    """

    protocol: str
    topology: str
    n_nodes: int
    diameter: int
    f_budget: Optional[int]
    f_actual: int
    result: Optional[int]
    correct: bool
    cc_bits: int
    rounds: int
    flooding_rounds: int
    extra: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_kind: Optional[str] = None
    attempts: int = 1
    seed: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row.update(row.pop("extra"))
        if row.get("error") is None:
            row.pop("error", None)
            row.pop("error_kind", None)
        if row.get("attempts") == 1:
            row.pop("attempts", None)
        if row.get("seed") is None:
            row.pop("seed", None)
        return row

    @property
    def failed(self) -> bool:
        """Whether this row records a captured failure, not a result."""
        return self.error is not None


def make_inputs(
    topology: Topology, rng: random.Random, max_input: Optional[int] = None
) -> Dict[int, int]:
    """Random node inputs in ``[0, max_input]`` (default ``N``, polynomial
    domain per the model)."""
    hi = topology.n_nodes if max_input is None else max_input
    return {u: rng.randint(0, hi) for u in topology.nodes()}


def _flat_injectors(injectors):
    """Injectors plus one level of wrapper ``.inner`` chains."""
    for injector in injectors or ():
        yield injector
        inner = getattr(injector, "inner", None)
        if isinstance(inner, (list, tuple)):
            yield from inner


def _effective_schedule(
    schedule: FailureSchedule, network
) -> FailureSchedule:
    """The crash schedule that actually happened.

    Adaptive adversaries (:mod:`repro.adversary.adaptive`) inject crashes
    online, so the network's final crash map may be a superset of the
    declared oblivious schedule; correctness must be graded against what
    actually crashed.
    """
    if network is None:
        return schedule
    crash = {
        u: max(1, int(r))
        for u, r in network.crash_rounds.items()
        if r != float("inf")
    }
    if crash == schedule.crash_rounds:
        return schedule
    return FailureSchedule(crash)


def run_protocol(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    t: Optional[int] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    rng: Optional[random.Random] = None,
    strict: bool = True,
    injectors=(),
    monitors=None,
    strict_monitors: bool = False,
    transport=None,
    recovery=None,
    integrity=None,
    churn=None,
    churn_policy=None,
    gray=None,
    byz=None,
    byz_config=None,
    allow_root_crash: bool = False,
) -> RunRecord:
    """Run one named protocol and grade its output.

    Protocols: ``algorithm1`` (needs ``f`` and ``b``), ``bruteforce``,
    ``folklore`` (needs ``f``), ``tag``, ``unknown_f``, ``agg_veri``
    (needs ``t``; grades the pair's result only when accepted).

    ``transport`` (a :class:`repro.resilience.transport.TransportConfig`)
    runs ``algorithm1`` / ``unknown_f`` over the reliable local-broadcast
    shim; ``recovery`` (a :class:`repro.resilience.failover.RecoveryPolicy`)
    runs them under the full self-healing runtime — transport plus root
    failover plus graceful degradation; the row then carries the partial
    result's status / certification / coverage columns.
    ``integrity`` (an :class:`repro.integrity.frames.IntegrityConfig`, a
    mode string, or a coordinator) wraps every broadcast in an
    authenticated frame so corrupted deliveries are detected and dropped;
    it composes with both ``transport`` and ``recovery`` (overriding
    ``recovery.integrity`` when both are given).
    ``churn`` (a :class:`repro.sim.faults.ChurnSchedule` or its spec
    string, e.g. ``'5:crash@r3,5:revive@r7:amnesiac'``) runs them under
    the churn-tolerant epoch manager
    (:mod:`repro.resilience.epochs`) with exactly-once re-aggregation;
    ``churn_policy`` (a :class:`repro.resilience.epochs.ChurnPolicy`)
    tunes its transport/epoch budget.  ``churn`` is mutually exclusive
    with ``recovery``; the row then carries the partial result's
    status / certification / coverage columns plus the churn counters
    (rejoins, handshakes, lost contributions, double-count audit).
    ``gray`` (a :class:`repro.sim.faults.GrayFailureSchedule` or its spec
    string, e.g. ``'3:stall@r4-r9:x2,link:1-2@r5-r12:x2:ramp'``) injects
    gray failures — compute stalls and link-latency inflation that slow
    nodes without killing them; the schedule is auto-attached as a fault
    injector (unless one is already in ``injectors`` or the run is a
    replay re-applying recorded delays) and its ground-truth ledger feeds
    the :class:`repro.sim.monitors.StragglerOracle` when the standard
    monitor stack is used.
    ``byz`` (a :class:`repro.sim.faults.ByzantineSchedule` or its spec
    string, e.g. ``'5:equivocate,7:inflate=4@r3'``) runs ``algorithm1`` /
    ``unknown_f`` under the witness defence
    (:mod:`repro.resilience.byzantine`): compromised-node claims are
    cross-validated, equivocators are convicted and evicted through
    discard-and-retry epochs, and the row carries an influence-bounded
    partial certificate (|error| <= residual_budget * v_max).
    ``byz_config`` (a :class:`repro.resilience.byzantine.ByzantineConfig`)
    tunes witnesses / eviction policy / epoch budget.  A schedule with no
    compromised nodes takes the plain path bit-for-bit.  ``byz`` is
    mutually exclusive with ``transport`` / ``recovery`` / ``churn`` /
    ``gray`` and with corruption injectors — the witness audits assume
    in-model delivery, so any other delivery-rewriting fault source would
    make honest nodes convictable.
    ``allow_root_crash`` relaxes strict validation for root-crashing
    schedules (implied by ``recovery``).

    With ``strict=True`` (default) the configuration is checked against
    every Section 2 model assumption first (see
    :mod:`repro.sim.validation`) and a ValueError with full diagnostics is
    raised on any violation.  Pass ``strict=False`` to deliberately run
    out-of-model configurations (e.g. when sampling adversaries that may
    exceed the ``c``-stretch assumption).

    ``injectors`` attach fault-injection middleware to the execution
    (:mod:`repro.sim.faults`); ``monitors`` attach runtime invariant
    monitors (:mod:`repro.sim.monitors`).  ``strict_monitors=True``
    builds the standard monitor stack in strict mode when no explicit
    ``monitors`` are given, so any invariant break raises
    :class:`repro.sim.monitors.InvariantViolation` mid-run; additionally
    a silently-wrong graded result raises after the run.  Recorded
    monitor violations are surfaced in ``extra["violations"]``.
    """
    schedule = schedule or FailureSchedule()
    rng = rng or random.Random()
    extra: Dict[str, Any] = {}
    if transport is not None and recovery is not None:
        raise ValueError(
            "pass transport via the RecoveryPolicy when recovery is set"
        )
    if churn is not None and recovery is not None:
        raise ValueError(
            "churn and recovery are mutually exclusive runtimes "
            "(the churn epoch manager assumes an immortal root)"
        )
    if (
        transport is not None
        or recovery is not None
        or integrity is not None
        or churn is not None
    ):
        from ..resilience.failover import RECOVERABLE_PROTOCOLS

        if protocol not in RECOVERABLE_PROTOCOLS:
            raise ValueError(
                f"transport/recovery/integrity/churn support "
                f"{RECOVERABLE_PROTOCOLS}, not {protocol!r}"
            )
    if churn is not None and isinstance(churn, str):
        from ..sim.faults import ChurnSchedule

        churn = ChurnSchedule.from_spec(churn, root=topology.root)
    if gray is not None:
        from ..sim.faults import GrayFailureSchedule, gray_sources
        from ..sim.replay import ReplayInjector

        if isinstance(gray, str):
            gray = GrayFailureSchedule.from_spec(gray)
        gray.validate(topology)
        replaying = any(
            isinstance(i, ReplayInjector) for i in _flat_injectors(injectors)
        )
        if gray.has_events and not gray_sources(injectors) and not replaying:
            # A replay's ReplayInjector re-applies the recorded delivery
            # shifts itself; attaching the schedule again would double the
            # delays.  Otherwise the schedule rides *inside* a recording
            # wrapper when one is present, so its due-shifts land in the
            # bundle and replays reproduce them byte-for-byte.
            from ..sim.recorder import RecordingInjector

            recorder = next(
                (i for i in injectors if isinstance(i, RecordingInjector)),
                None,
            )
            if recorder is not None:
                recorder.inner.append(gray)
                recorder.modifies_delivery = True
            else:
                injectors = tuple(injectors) + (gray,)
    if transport is not None:
        # Coerce once here so the same coordinator feeds the run, the
        # retransmit-budget monitor, and the row's overhead columns.
        from ..resilience.transport import as_transport

        transport = as_transport(transport)
    # Same idea for integrity: one coordinator feeds the run, the
    # silent-corruption oracle, and the row's rejection columns.  With
    # recovery, an explicit argument overrides the policy's config.
    from ..integrity.frames import as_integrity

    integrity = as_integrity(
        integrity
        if integrity is not None
        else getattr(recovery, "integrity", None)
    )
    allow_root_crash = allow_root_crash or recovery is not None
    if strict:
        from ..sim.validation import assert_model

        assert_model(
            topology,
            inputs=inputs,
            schedule=schedule,
            f=f,
            b=b if protocol == "algorithm1" else None,
            c=c,
            allow_root_crash=allow_root_crash,
        )
    from ..sim.faults import corruption_sources

    corruption = corruption_sources(injectors)
    if byz is not None:
        from ..sim.faults import ByzantineSchedule

        if isinstance(byz, str):
            byz = ByzantineSchedule.from_spec(byz)
        byz.validate(topology)
        if byz.has_events:
            # A ReplayInjector counts as a corruption source only when its
            # bundle actually recorded content rewrites — a byz bundle's
            # replay carries the ledger attribute but no rewrites.
            corrupting = [
                s for s in corruption if getattr(s, "has_rewrites", True)
            ]
            clashes = [
                name
                for name, other in (
                    ("transport", transport),
                    ("recovery", recovery),
                    ("churn", churn),
                    ("gray", gray if gray is not None and gray.has_events
                     else None),
                    ("corruption injectors", corrupting or None),
                )
                if other is not None
            ]
            if clashes:
                raise ValueError(
                    "byz is mutually exclusive with "
                    f"{', '.join(clashes)}: the witness audits assume "
                    "in-model delivery for honest nodes"
                )
            from ..resilience.failover import RECOVERABLE_PROTOCOLS

            if protocol not in RECOVERABLE_PROTOCOLS:
                raise ValueError(
                    f"byz supports {RECOVERABLE_PROTOCOLS}, not {protocol!r}"
                )
    if monitors is None and strict_monitors:
        monitors = standard_monitors(
            topology,
            inputs,
            f=f,
            b=b,
            c=c,
            caaf=caaf,
            mode="strict",
            recovery=allow_root_crash,
            transport=transport,
            corruption=corruption,
            integrity=integrity,
            churn=churn is not None,
            gray=gray,
            byz=byz if byz is not None and byz.has_events else None,
        )
    monitors = monitors or ()
    if churn is not None:
        if integrity is not None:
            raise ValueError(
                "churn does not compose with the integrity layer yet"
            )
        if churn_policy is None and transport is not None:
            from ..resilience.epochs import ChurnPolicy

            churn_policy = ChurnPolicy(transport=transport.config)
        return _run_with_churn_record(
            protocol, topology, inputs, schedule, f=f, b=b, c=c, caaf=caaf,
            rng=rng, injectors=injectors, monitors=monitors,
            strict_monitors=strict_monitors, churn=churn,
            policy=churn_policy,
        )
    if byz is not None and byz.has_events:
        # Zero-compromise schedules fall through to the plain path so a
        # ``--byz`` run with no actual adversary stays bit-identical to
        # the baseline (same CC, rounds, and trace digests).
        return _run_with_byzantine_record(
            protocol, topology, inputs, schedule, f=f, b=b, c=c, caaf=caaf,
            rng=rng, injectors=injectors, monitors=monitors,
            strict_monitors=strict_monitors, byz=byz, config=byz_config,
            integrity=integrity,
        )
    if recovery is not None:
        return _run_with_recovery_record(
            protocol, topology, inputs, schedule, f=f, b=b, c=c, caaf=caaf,
            rng=rng, injectors=injectors, monitors=monitors,
            strict_monitors=strict_monitors, policy=recovery,
            integrity=integrity,
        )
    # The AGG-only oracle would mis-grade a pair whose VERI rejects, so
    # the pair path relies on the post-run grading below instead.
    pair_monitors = [m for m in monitors if m.rule != "oracle"]

    network = None
    if protocol == "algorithm1":
        if f is None or b is None:
            raise ValueError("algorithm1 needs f and b")
        out = run_algorithm1(
            topology,
            inputs,
            f=f,
            b=b,
            schedule=schedule,
            c=c,
            caaf=caaf,
            rng=rng,
            injectors=injectors,
            monitors=monitors,
            transport=transport,
            integrity=integrity,
            allow_root_crash=allow_root_crash,
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        network = out.network
        extra = {
            "pairs_run": out.pairs_run,
            "used_bruteforce": out.used_bruteforce,
            "winning_interval": out.winning_interval,
            "x_intervals": out.plan.x,
            "t": out.plan.t,
        }
    elif protocol == "bruteforce":
        out = run_bruteforce(
            topology,
            inputs,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=monitors,
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        network = out.network
    elif protocol == "folklore":
        if f is None:
            raise ValueError("folklore needs f")
        out = run_folklore(
            topology,
            inputs,
            f=f,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=monitors,
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        network = out.network
    elif protocol == "tag":
        out = run_plain_tag(
            topology,
            inputs,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=monitors,
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        network = out.network
    elif protocol == "unknown_f":
        out = run_unknown_f(
            topology,
            inputs,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=monitors,
            transport=transport,
            integrity=integrity,
            allow_root_crash=allow_root_crash,
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        network = out.network
        extra = {
            "pairs_run": out.pairs_run,
            "accepted_guess": out.accepted_guess,
            "used_bruteforce": out.used_bruteforce,
        }
    elif protocol == "agg_veri":
        if t is None:
            raise ValueError("agg_veri needs t")
        pair = run_agg_veri_pair(
            topology,
            inputs,
            t=t,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=pair_monitors,
        )
        result = pair.agg_result if pair.accepted else None
        stats = pair.agg_stats
        rounds = pair.agg_stats.rounds_executed + pair.veri_stats.rounds_executed
        cc = max(
            (
                pair.agg_stats.bits_of(u) + pair.veri_stats.bits_of(u)
                for u in topology.nodes()
            ),
            default=0,
        )
        extra = {
            "agg_aborted": pair.agg_aborted,
            "veri_output": pair.veri_output,
            "accepted": pair.accepted,
        }
        correct = is_correct_result(
            result, caaf, topology, inputs, schedule, rounds
        )
        record = RunRecord(
            protocol=protocol,
            topology=topology.name,
            n_nodes=topology.n_nodes,
            diameter=topology.diameter,
            f_budget=f,
            f_actual=schedule.edge_failures(topology),
            result=result,
            correct=correct,
            cc_bits=cc,
            rounds=rounds,
            flooding_rounds=-(-rounds // topology.diameter),
            extra=extra,
        )
        return _finish_record(record, pair_monitors, strict_monitors)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    effective = _effective_schedule(schedule, network)
    if transport is not None:
        counters = transport.counters()
        extra["overhead_bits"] = stats.max_overhead_bits
        extra["retransmissions"] = counters["retransmissions"]
        extra["nacks"] = counters["nacks"]
        # Quarantined links count as live gaps on purpose — starved
        # frames are real data loss and must decertify (same rule as the
        # failover layer's certification).
        extra["live_gaps"] = len(
            transport.live_gaps(network.crash_rounds if network else {})
        )
        stats.link_stats = transport.link_counters()
        if transport.config.hedge:
            extra["hedges"] = counters["hedges"]
            extra["hedge_deliveries"] = counters["hedge_deliveries"]
        if transport.detector is not None:
            extra["suspects"] = counters["suspects"]
            extra["confirms"] = counters["confirms"]
    if gray is not None and gray.has_events:
        extra["gray_stalled"] = gray.counts.stalled_copies
        extra["gray_inflated"] = gray.counts.inflated_copies
        extra["gray_delay_rounds"] = gray.counts.delay_rounds
    if integrity is not None:
        counters = integrity.counters()
        extra.setdefault("overhead_bits", stats.max_overhead_bits)
        extra["integrity_rejected"] = counters["rejected"]
        extra["quarantined_links"] = sorted(integrity.quarantined_links)
        if counters.get("quarantined_nodes"):
            extra["quarantined_nodes"] = (
                integrity.quarantine.quarantined_node_ids()
            )
    if corruption:
        from ..integrity.frames import unresolved_corruptions

        extra["delivered_corruptions"] = sum(
            len(s.delivered_corruptions) for s in corruption
        )
        extra["unresolved_corruptions"] = len(
            unresolved_corruptions(corruption, integrity)
        )
    correct = is_correct_result(result, caaf, topology, inputs, effective, rounds)
    record = RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=effective.edge_failures(topology),
        result=result,
        correct=correct,
        cc_bits=stats.max_bits,
        rounds=rounds,
        flooding_rounds=-(-rounds // topology.diameter),
        extra=extra,
    )
    return _finish_record(
        record, monitors, strict_monitors, link_stats=stats.link_stats
    )


def _run_with_recovery_record(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    *,
    f: Optional[int],
    b: Optional[int],
    c: int,
    caaf: CAAF,
    rng: Optional[random.Random],
    injectors,
    monitors,
    strict_monitors: bool,
    policy,
    integrity=None,
) -> RunRecord:
    """Recovery path of :func:`run_protocol`.

    Correctness for a recovered run means: the partial result is
    certified and its value sits inside its own deterministic bounds
    (coverage aggregate <= value <= all-nodes aggregate); for a run with
    no live gaps and no root loss this collapses to exactness against
    the Section 2 oracle, because coverage is then every node.
    """
    from ..resilience.failover import run_with_recovery

    out = run_with_recovery(
        protocol,
        topology,
        inputs,
        schedule=schedule,
        f=f,
        b=b,
        c=c,
        caaf=caaf,
        rng=rng,
        injectors=injectors,
        monitors=monitors,
        policy=policy,
        integrity=integrity,
    )
    partial = out.partial
    correct = bool(
        partial.certified
        and partial.value is not None
        and partial.lower_bound is not None
        and partial.upper_bound is not None
        and partial.lower_bound <= partial.value <= partial.upper_bound
    )
    extra = {k: v for k, v in partial.as_dict().items() if k != "value"}
    extra.update(partial.extra)
    extra["elections"] = len(out.elections)
    record = RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=schedule.edge_failures(topology),
        result=partial.value,
        correct=correct,
        cc_bits=out.stats.max_bits,
        rounds=out.rounds,
        flooding_rounds=-(-out.rounds // topology.diameter),
        extra=extra,
    )
    return _finish_record(
        record, monitors, strict_monitors, link_stats=out.stats.link_stats
    )


def _run_with_churn_record(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    *,
    f: Optional[int],
    b: Optional[int],
    c: int,
    caaf: CAAF,
    rng: Optional[random.Random],
    injectors,
    monitors,
    strict_monitors: bool,
    churn,
    policy,
) -> RunRecord:
    """Churn path of :func:`run_protocol`.

    Correctness matches the recovery path (certified + value inside its
    own bounds) with one extra obligation audited by the exactly-once
    oracle: no contribution is ever booked twice across incarnations
    (``double_counted``) and none silently vanishes while a recoverable
    copy survived (``lost_contributions``).
    """
    from ..resilience.epochs import run_with_churn
    from ..sim.monitors import DoubleCountOracle

    monitors = tuple(monitors)
    oracle = next(
        (m for m in monitors if isinstance(m, DoubleCountOracle)), None
    )
    if oracle is None:
        oracle = DoubleCountOracle(
            inputs,
            caaf=caaf,
            mode="strict" if strict_monitors else "record",
        )
        monitors = monitors + (oracle,)
    out = run_with_churn(
        protocol,
        topology,
        inputs,
        churn,
        schedule=schedule,
        f=f,
        b=b,
        c=c,
        caaf=caaf,
        rng=rng,
        injectors=injectors,
        monitors=monitors,
        policy=policy,
        oracle=oracle,
    )
    partial = out.partial
    correct = bool(
        partial.certified
        and partial.value is not None
        and partial.lower_bound is not None
        and partial.upper_bound is not None
        and partial.lower_bound <= partial.value <= partial.upper_bound
        and oracle.double_counts == 0
    )
    extra = {k: v for k, v in partial.as_dict().items() if k != "value"}
    extra.update(partial.extra)
    extra["double_counted"] = oracle.double_counts
    extra["lost_contributions"] = oracle.lost_contributions
    record = RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=schedule.edge_failures(topology),
        result=partial.value,
        correct=correct,
        cc_bits=out.stats.max_bits,
        rounds=out.rounds,
        flooding_rounds=-(-out.rounds // topology.diameter)
        if out.rounds
        else 0,
        extra=extra,
    )
    return _finish_record(
        record, monitors, strict_monitors, link_stats=out.stats.link_stats
    )


def _run_with_byzantine_record(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    *,
    f: Optional[int],
    b: Optional[int],
    c: int,
    caaf: CAAF,
    rng: Optional[random.Random],
    injectors,
    monitors,
    strict_monitors: bool,
    byz,
    config,
    integrity=None,
) -> RunRecord:
    """Byzantine path of :func:`run_protocol`.

    Correctness for a defended run means: the partial result is certified
    and its value sits inside the Section 2 bracket *widened by its own
    influence bound* (``lower - bound <= value <= upper + bound``) — an
    unconvicted compromised node may legally pull the value by up to
    ``v_max`` — and the witness pool convicted no honest node.  The
    detection-quality grading itself (false convictions, undetected
    equivocations, bound violations) runs through the
    :class:`repro.sim.monitors.ByzantineOracle` against the schedule's
    ground-truth taint ledger.
    """
    from ..resilience.byzantine import run_with_byzantine
    from ..sim.monitors import ByzantineOracle

    monitors = tuple(monitors)
    oracle = next(
        (m for m in monitors if isinstance(m, ByzantineOracle)), None
    )
    if oracle is None:
        oracle = ByzantineOracle(
            byz,
            inputs,
            caaf=caaf,
            mode="strict" if strict_monitors else "record",
        )
        monitors = monitors + (oracle,)
    out = run_with_byzantine(
        protocol,
        topology,
        inputs,
        byz,
        schedule=schedule,
        f=f,
        b=b,
        c=c,
        caaf=caaf,
        rng=rng,
        injectors=injectors,
        monitors=monitors,
        config=config,
        integrity=integrity,
    )
    partial = out.partial
    # Whole-run grading: needs the complete taint ledger and the final
    # certificate, so it runs here rather than per-network.
    oracle.grade_convictions(out.convictions)
    oracle.grade_result(partial)
    bound = partial.influence_bound or 0
    correct = bool(
        partial.certified
        and partial.value is not None
        and partial.lower_bound is not None
        and partial.upper_bound is not None
        and partial.lower_bound - bound
        <= partial.value
        <= partial.upper_bound + bound
        and oracle.false_convictions == 0
    )
    extra = {k: v for k, v in partial.as_dict().items() if k != "value"}
    extra.update(partial.extra)
    extra["false_convictions"] = oracle.false_convictions
    extra["undetected_equivocations"] = oracle.undetected_equivocations
    extra["influence_exceeded"] = oracle.influence_exceeded
    record = RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=schedule.edge_failures(topology),
        result=partial.value,
        correct=correct,
        cc_bits=out.stats.max_bits,
        rounds=out.rounds,
        flooding_rounds=-(-out.rounds // topology.diameter)
        if out.rounds
        else 0,
        extra=extra,
    )
    return _finish_record(
        record, monitors, strict_monitors, link_stats=out.stats.link_stats
    )


def _finish_record(
    record: RunRecord, monitors, strict_monitors: bool, link_stats=None
) -> RunRecord:
    """Attach recorded monitor violations; enforce zero-error if strict."""
    from ..sim.monitors import StragglerOracle

    for monitor in monitors or ():
        if isinstance(monitor, StragglerOracle):
            # Missed-degradation grading needs the complete suspicion
            # record, so it runs once here — after the whole run.
            monitor.grade_final()
            record.extra["false_suspects"] = monitor.false_suspects
            record.extra["missed_degradations"] = monitor.missed_degradations
    events = violations_of(monitors)
    if events:
        record.extra["violations"] = [str(e) for e in events]
    if strict_monitors and record.result is not None and not record.correct:
        raise InvariantViolation(
            "oracle",
            f"{record.protocol} output {record.result} graded incorrect "
            f"against the Section 2 oracle",
        )
    if _obs_metrics.enabled:
        # Fold the finished run into the active observability registry —
        # the facade that supersedes per-call-site SimStats mining.
        _obs_metrics.record_run(
            _obs_metrics.active(),
            protocol=record.protocol,
            cc_bits=record.cc_bits,
            rounds=record.rounds,
            flooding_rounds=record.flooding_rounds,
            correct=record.correct,
            overhead_bits=record.extra.get("overhead_bits"),
            extra=record.extra,
            link_stats=link_stats,
        )
    return record


# --------------------------------------------------------------------- #
# Crash-safe execution: timeout, retry, structured error capture.
# --------------------------------------------------------------------- #


class RunTimeout(Exception):
    """A protocol run exceeded its wall-clock limit."""


@contextmanager
def wall_clock_limit(seconds: Optional[float]):
    """Enforce a wall-clock limit via ``SIGALRM`` where possible.

    In the main thread of a Unix process the limit is hard (an in-flight
    round is interrupted).  Elsewhere (worker threads, platforms without
    ``setitimer``) the context is a no-op — callers still get error
    capture for raising runs, just not for hanging ones.
    """
    if seconds is None:
        yield
        return
    if seconds <= 0:
        raise ValueError(f"timeout must be positive, got {seconds}")
    can_alarm = hasattr(signal, "setitimer") and (
        threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def error_record(
    protocol: str,
    topology: Topology,
    exc: BaseException,
    schedule: Optional[FailureSchedule] = None,
    f: Optional[int] = None,
    attempts: int = 1,
    seed: Optional[int] = None,
) -> RunRecord:
    """A structured row for a run that raised instead of returning."""
    schedule = schedule or FailureSchedule()
    message = str(exc) or exc.__class__.__name__
    return RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=schedule.edge_failures(topology),
        result=None,
        correct=False,
        cc_bits=0,
        rounds=0,
        flooding_rounds=0,
        error=message[:500],
        error_kind=exc.__class__.__name__,
        attempts=attempts,
        seed=seed,
    )


def _capture_bundle(
    capture_dir: str,
    recorder,
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    kwargs: Dict[str, Any],
    record: RunRecord,
    seed: Optional[int],
    rng_state,
    monitor_mode: Optional[str],
) -> str:
    """Serialize one recorded failing run into ``capture_dir``.

    The filename is deterministic (protocol, topology, seed, content
    hash) so re-running the same sweep overwrites rather than multiplies
    bundles.
    """
    import os
    import re

    from ..integrity.frames import as_integrity
    from ..sim.recorder import make_execution_record

    caaf = kwargs.get("caaf")
    transport = kwargs.get("transport")
    recovery = kwargs.get("recovery")
    integrity = as_integrity(kwargs.get("integrity"))
    churn = kwargs.get("churn")
    if churn is not None and isinstance(churn, str):
        from ..sim.faults import ChurnSchedule

        churn = ChurnSchedule.from_spec(churn, root=topology.root)
    churn_policy = kwargs.get("churn_policy")
    gray = kwargs.get("gray")
    if gray is not None and isinstance(gray, str):
        from ..sim.faults import GrayFailureSchedule

        gray = GrayFailureSchedule.from_spec(gray)
    byz = kwargs.get("byz")
    if byz is not None and isinstance(byz, str):
        from ..sim.faults import ByzantineSchedule

        byz = ByzantineSchedule.from_spec(byz)
    byz_config = kwargs.get("byz_config")
    bundle = make_execution_record(
        recorder,
        protocol,
        topology,
        inputs,
        schedule,
        params={
            "f": kwargs.get("f"),
            "b": kwargs.get("b"),
            "t": kwargs.get("t"),
            "c": kwargs.get("c", 2),
            "caaf": getattr(caaf, "name", None),
            "transport": (
                getattr(transport, "config", transport).as_jsonable()
                if transport is not None
                else None
            ),
            "recovery": (
                recovery.as_jsonable() if recovery is not None else None
            ),
            "integrity": (
                integrity.config.as_jsonable()
                if integrity is not None
                else None
            ),
            "allow_root_crash": (
                True if kwargs.get("allow_root_crash") else None
            ),
            "churn": churn.as_jsonable() if churn is not None else None,
            "churn_policy": (
                churn_policy.as_jsonable()
                if churn_policy is not None
                else None
            ),
            "gray": gray.as_jsonable() if gray is not None else None,
            "byz": byz.as_jsonable() if byz is not None else None,
            "byz_config": (
                byz_config.as_jsonable() if byz_config is not None else None
            ),
        },
        run_record=record,
        seed=seed,
        rng_state=rng_state,
        strict_model=bool(kwargs.get("strict", True)),
        monitor_mode=monitor_mode,
    )
    os.makedirs(capture_dir, exist_ok=True)
    stem = re.sub(
        r"[^A-Za-z0-9_.-]+",
        "-",
        f"{protocol}-{topology.name}-s{seed}-{bundle.content_hash()}",
    )
    return bundle.save(os.path.join(capture_dir, f"{stem}.json"))


def _monitor_mode_of(kwargs: Dict[str, Any]) -> Optional[str]:
    """The monitor configuration a bundle must reproduce on replay."""
    if kwargs.get("strict_monitors"):
        return "strict"
    monitors = kwargs.get("monitors")
    if monitors:
        return getattr(monitors[0], "mode", "record")
    return None


def _attach_attempt_telemetry(
    record: RunRecord, latencies: list, backoffs: list
) -> RunRecord:
    """Attach per-attempt wall-clock telemetry to a finished row.

    The single shared exit path for success, error, *and* timeout rows —
    pool workers go through it too, so worker-side timeouts carry the
    same columns as serial ones.  Healthy single-attempt rows stay
    unannotated (tables look exactly as before); any retried or failed
    row records every attempt's latency and every retry's actual
    (jittered) backoff sleep.
    """
    if record.failed or record.attempts > 1:
        record.extra["attempt_latencies"] = list(latencies)
    if backoffs:
        record.extra["retry_backoffs"] = list(backoffs)
    return record


def safe_run_protocol(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    capture_dir: Optional[str] = None,
    **kwargs,
) -> RunRecord:
    """Crash-safe :func:`run_protocol`: errors become rows, not exceptions.

    * ``timeout_s`` — per-attempt wall-clock limit (:func:`wall_clock_limit`).
    * ``retries`` — additional attempts after a failure.  The first
      attempt uses the caller's ``rng``; retries reseed deterministically
      from ``seed`` and the attempt number, so a flaky failure is retried
      with fresh coins while staying reproducible.
    * ``backoff_s`` — base sleep before each retry, doubling per attempt
      with deterministic seeded jitter (+0..50%), so parallel sweep
      workers hitting a shared flaky resource don't retry in lockstep.
      Per-attempt wall-clock latencies (excluding the sleeps) land in
      ``extra["attempt_latencies"]`` on every failure row — timeouts
      included — and on success rows whenever a retry was needed; the
      actual jittered sleeps land in ``extra["retry_backoffs"]``
      whenever a backoff was taken (see :func:`_attach_attempt_telemetry`,
      the shared exit path serial runs and pool workers both use).
    * On final failure the captured exception is returned as an
      :func:`error_record` (``correct=False``, ``error`` / ``error_kind``
      set).  ``KeyboardInterrupt``/``SystemExit`` always propagate, so an
      interrupted sweep stops instead of recording bogus rows.
    * ``capture_dir`` — forensics: wrap the execution in a
      :class:`repro.sim.recorder.RecordingInjector` and, whenever the
      final row is a failure (:func:`repro.sim.recorder.is_failure`),
      write a deterministic repro bundle there and note its path in
      ``record.extra["bundle"]``.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
    last_exc: Optional[BaseException] = None
    last_recorder = None
    last_rng_state = None
    schedule = schedule or FailureSchedule()
    attempts = 0
    # Jitter coins are independent of the retry rngs (different multiplier)
    # so adding backoff never changes which coins a retry runs with.
    jitter_rng = random.Random(((seed or 0) + 1) * 7_477_777)
    latencies: list = []
    backoffs: list = []
    for attempt in range(retries + 1):
        attempts += 1
        if attempt > 0 and backoff_s > 0:
            pause = (
                backoff_s * 2 ** (attempt - 1) * (1 + 0.5 * jitter_rng.random())
            )
            backoffs.append(round(pause, 6))
            time.sleep(pause)
        if attempt == 0 and rng is not None:
            attempt_rng = rng
        else:
            attempt_rng = random.Random(((seed or 0) + 1) * 1_000_003 + attempt)
        recorder = None
        rng_state = None
        run_kwargs = kwargs
        if capture_dir is not None:
            from ..sim.recorder import RecordingInjector

            recorder = RecordingInjector(kwargs.get("injectors") or ())
            rng_state = attempt_rng.getstate()
            run_kwargs = dict(kwargs, injectors=(recorder,))
        started = time.perf_counter()
        try:
            with wall_clock_limit(timeout_s):
                record = run_protocol(
                    protocol,
                    topology,
                    inputs,
                    schedule=schedule,
                    rng=attempt_rng,
                    **run_kwargs,
                )
            latencies.append(round(time.perf_counter() - started, 6))
            record.attempts = attempts
            record.seed = seed
            _attach_attempt_telemetry(record, latencies, backoffs)
            if recorder is not None:
                from ..sim.recorder import is_failure

                if is_failure(record):
                    record.extra["bundle"] = _capture_bundle(
                        capture_dir, recorder, protocol, topology, inputs,
                        schedule, kwargs, record, seed, rng_state,
                        _monitor_mode_of(kwargs),
                    )
            return record
        except Exception as exc:  # structured capture is the point
            latencies.append(round(time.perf_counter() - started, 6))
            last_exc = exc
            last_recorder = recorder
            last_rng_state = rng_state
    record = error_record(
        protocol,
        topology,
        last_exc,
        schedule=schedule,
        f=kwargs.get("f"),
        attempts=attempts,
        seed=seed,
    )
    _attach_attempt_telemetry(record, latencies, backoffs)
    if last_recorder is not None and not isinstance(last_exc, RunTimeout):
        record.extra["bundle"] = _capture_bundle(
            capture_dir, last_recorder, protocol, topology, inputs, schedule,
            kwargs, record, seed, last_rng_state, _monitor_mode_of(kwargs),
        )
    return record
