"""Uniform experiment runner over all protocols in the library.

One call = one protocol execution on one (topology, inputs, schedule) tuple,
returning a flat :class:`RunRecord` with the paper's two costs (CC in bits
at the bottleneck node, TC in rounds/flooding rounds) plus correctness per
the Section 2 oracle.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional

from ..adversary.schedule import FailureSchedule
from ..baselines.bruteforce import run_bruteforce
from ..baselines.folklore import run_folklore, run_plain_tag
from ..core.caaf import CAAF, SUM
from ..core.correctness import is_correct_result
from ..core.unknown_f import run_unknown_f
from ..core.algorithm1 import run_algorithm1
from ..core.veri import run_agg_veri_pair
from ..graphs.topology import Topology


@dataclass
class RunRecord:
    """Flat result row for tables and benches."""

    protocol: str
    topology: str
    n_nodes: int
    diameter: int
    f_budget: Optional[int]
    f_actual: int
    result: Optional[int]
    correct: bool
    cc_bits: int
    rounds: int
    flooding_rounds: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row.update(row.pop("extra"))
        return row


def make_inputs(
    topology: Topology, rng: random.Random, max_input: Optional[int] = None
) -> Dict[int, int]:
    """Random node inputs in ``[0, max_input]`` (default ``N``, polynomial
    domain per the model)."""
    hi = topology.n_nodes if max_input is None else max_input
    return {u: rng.randint(0, hi) for u in topology.nodes()}


def run_protocol(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    t: Optional[int] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    rng: Optional[random.Random] = None,
    strict: bool = False,
) -> RunRecord:
    """Run one named protocol and grade its output.

    Protocols: ``algorithm1`` (needs ``f`` and ``b``), ``bruteforce``,
    ``folklore`` (needs ``f``), ``tag``, ``unknown_f``, ``agg_veri``
    (needs ``t``; grades the pair's result only when accepted).

    With ``strict=True`` the configuration is checked against every
    Section 2 model assumption first (see :mod:`repro.sim.validation`) and
    a ValueError with full diagnostics is raised on any violation.
    """
    schedule = schedule or FailureSchedule()
    rng = rng or random.Random()
    extra: Dict[str, Any] = {}
    if strict:
        from ..sim.validation import assert_model

        assert_model(
            topology,
            inputs=inputs,
            schedule=schedule,
            f=f,
            b=b if protocol == "algorithm1" else None,
            c=c,
        )

    if protocol == "algorithm1":
        if f is None or b is None:
            raise ValueError("algorithm1 needs f and b")
        out = run_algorithm1(
            topology, inputs, f=f, b=b, schedule=schedule, c=c, caaf=caaf, rng=rng
        )
        result, stats, rounds = out.result, out.stats, out.rounds
        extra = {
            "pairs_run": out.pairs_run,
            "used_bruteforce": out.used_bruteforce,
            "winning_interval": out.winning_interval,
            "x_intervals": out.plan.x,
            "t": out.plan.t,
        }
    elif protocol == "bruteforce":
        out = run_bruteforce(topology, inputs, schedule=schedule, c=c, caaf=caaf)
        result, stats, rounds = out.result, out.stats, out.rounds
    elif protocol == "folklore":
        if f is None:
            raise ValueError("folklore needs f")
        out = run_folklore(topology, inputs, f=f, schedule=schedule, c=c, caaf=caaf)
        result, stats, rounds = out.result, out.stats, out.rounds
    elif protocol == "tag":
        out = run_plain_tag(topology, inputs, schedule=schedule, c=c, caaf=caaf)
        result, stats, rounds = out.result, out.stats, out.rounds
    elif protocol == "unknown_f":
        out = run_unknown_f(topology, inputs, schedule=schedule, c=c, caaf=caaf)
        result, stats, rounds = out.result, out.stats, out.rounds
        extra = {
            "pairs_run": out.pairs_run,
            "accepted_guess": out.accepted_guess,
            "used_bruteforce": out.used_bruteforce,
        }
    elif protocol == "agg_veri":
        if t is None:
            raise ValueError("agg_veri needs t")
        pair = run_agg_veri_pair(
            topology, inputs, t=t, schedule=schedule, c=c, caaf=caaf
        )
        result = pair.agg_result if pair.accepted else None
        stats = pair.agg_stats
        rounds = pair.agg_stats.rounds_executed + pair.veri_stats.rounds_executed
        cc = max(
            (
                pair.agg_stats.bits_of(u) + pair.veri_stats.bits_of(u)
                for u in topology.nodes()
            ),
            default=0,
        )
        extra = {
            "agg_aborted": pair.agg_aborted,
            "veri_output": pair.veri_output,
            "accepted": pair.accepted,
        }
        correct = is_correct_result(
            result, caaf, topology, inputs, schedule, rounds
        )
        return RunRecord(
            protocol=protocol,
            topology=topology.name,
            n_nodes=topology.n_nodes,
            diameter=topology.diameter,
            f_budget=f,
            f_actual=schedule.edge_failures(topology),
            result=result,
            correct=correct,
            cc_bits=cc,
            rounds=rounds,
            flooding_rounds=-(-rounds // topology.diameter),
            extra=extra,
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    correct = is_correct_result(result, caaf, topology, inputs, schedule, rounds)
    return RunRecord(
        protocol=protocol,
        topology=topology.name,
        n_nodes=topology.n_nodes,
        diameter=topology.diameter,
        f_budget=f,
        f_actual=schedule.edge_failures(topology),
        result=result,
        correct=correct,
        cc_bits=stats.max_bits,
        rounds=rounds,
        flooding_rounds=-(-rounds // topology.diameter),
        extra=extra,
    )
