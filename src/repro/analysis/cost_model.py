"""Analytic per-phase cost model for AGG and VERI.

Predicts, from ``(N, d, c, t)`` and a failure count, how many bits a node
sends in each phase of AGG/VERI — the white-box counterpart of the
black-box budgets ``(11t+14)(logN+5)`` and ``(5t+7)(3logN+10)``.  The
model is used two ways:

* tests compare it against tracer-measured per-phase traffic (it must
  upper-bound the failure-free case and stay within the paper's budgets);
* experimenters get a quick "what will this cost" estimate without
  running the simulator.

The model counts, per node (worst case over nodes):

AGG:
  construction   1 beacon (logN + 2t·logN + level) + 1 ack
  aggregation    1 upstream message + up to ``failures`` critical-failure
                 forwards
  flooding       up to ``floods`` forwarded/initiated partial sums, where
                 ``floods <= failures + 1``
  selection      up to ``2 * floods`` determination forwards

VERI:
  parent phase   the detect bit + up to ``claims`` failed-parent forwards
  child phase    1 upstream wave part + up to ``failures`` failed-child
                 forwards
  LFC phase      up to ``2 * claims`` determination forwards
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.params import ProtocolParams
from ..sim.message import TAG_BITS


@dataclass(frozen=True)
class PhaseCosts:
    """Predicted worst-case bits per node, per phase."""

    per_phase: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_phase.values())


def _overhead(p: ProtocolParams) -> int:
    return TAG_BITS + p.id_bits


def predict_agg_costs(p: ProtocolParams, failures: int) -> PhaseCosts:
    """Worst-case per-node bits for each AGG phase given ``failures``
    edge failures during the execution."""
    if failures < 0:
        raise ValueError("failures must be non-negative")
    floods = failures + 1
    construction = (
        _overhead(p) + p.level_bits + 2 * p.t * p.id_bits  # beacon
        + _overhead(p) + p.id_bits  # ack
    )
    aggregation = (
        _overhead(p) + p.psum_bits + p.level_bits  # upstream message
        + failures * (_overhead(p) + p.id_bits)  # critical-failure forwards
    )
    flooding = floods * (_overhead(p) + p.id_bits + p.psum_bits)
    selection = 2 * floods * (_overhead(p) + p.id_bits + 1)
    return PhaseCosts(
        per_phase={
            "construction": construction,
            "aggregation": aggregation,
            "flooding": flooding,
            "selection": selection,
        }
    )


def predict_veri_costs(p: ProtocolParams, failures: int) -> PhaseCosts:
    """Worst-case per-node bits for each VERI phase."""
    if failures < 0:
        raise ValueError("failures must be non-negative")
    claims = failures + 1
    parent_phase = (
        _overhead(p) + 1  # detect bit
        + claims * (_overhead(p) + 2 * p.id_bits + p.level_bits)
    )
    child_phase = (
        _overhead(p) + p.id_bits  # upstream wave part
        + failures * (_overhead(p) + p.id_bits)
    )
    lfc_phase = 2 * claims * (_overhead(p) + p.id_bits)
    return PhaseCosts(
        per_phase={
            "parent_detection": parent_phase,
            "child_detection": child_phase,
            "lfc_detection": lfc_phase,
        }
    )


def predict_pair_total(p: ProtocolParams, failures: int) -> float:
    """Predicted worst-case bits for one AGG + VERI pair."""
    return (
        predict_agg_costs(p, failures).total
        + predict_veri_costs(p, failures).total
    )


def within_paper_budget(p: ProtocolParams, failures: int) -> bool:
    """Whether the model's prediction at ``failures <= t`` stays under the
    paper's abort thresholds — i.e. the thresholds are loose enough that
    tolerable executions never abort."""
    failures = min(failures, p.t)
    agg_ok = predict_agg_costs(p, failures).total <= p.agg_bit_budget
    veri_ok = predict_veri_costs(p, failures).total <= p.veri_bit_budget
    return agg_ok and veri_ok


def phase_breakdown_from_trace(tracer, p: ProtocolParams) -> Dict[str, int]:
    """Measured network-wide bits per AGG phase, from a tracer.

    Splits :meth:`repro.sim.trace.Tracer.bits_per_round` at the phase
    boundaries of a standalone AGG execution (start round 1).
    """
    spans = {
        "construction": p.agg_construction_span,
        "aggregation": p.agg_aggregation_span,
        "flooding": p.agg_flooding_span,
        "selection": p.agg_selection_span,
    }
    per_round = tracer.bits_per_round()
    out = {}
    for name, (lo, hi) in spans.items():
        out[name] = sum(
            bits for rnd, bits in per_round.items() if lo <= rnd <= hi
        )
    return out
