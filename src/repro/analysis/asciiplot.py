"""Terminal rendering of Figure-1-style curves.

No plotting dependency is available offline, so the figure regeneration
renders curves as ASCII: multiple named series over a shared x grid, with
optional log-scaled y axis (the natural scale for CC curves spanning
orders of magnitude).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: Glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, height: int, log: bool) -> int:
    if log:
        value = math.log10(max(value, 1e-12))
        lo = math.log10(max(lo, 1e-12))
        hi = math.log10(max(hi, 1e-12))
    if hi == lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return int(round(frac * (height - 1)))


def plot_series(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    log_y: bool = True,
    title: Optional[str] = None,
    x_label: str = "b",
    y_label: str = "CC (bits)",
) -> str:
    """Render named series as an ASCII chart with a legend.

    Values <= 0 are skipped on a log axis (they have no finite position).
    """
    if not xs or not series:
        raise ValueError("need at least one x and one series")
    all_values = [
        v
        for values in series.values()
        for v in values
        if not log_y or v > 0
    ]
    if not all_values:
        raise ValueError("no plottable values")
    lo, hi = min(all_values), max(all_values)

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(xs), max(xs)

    def col_of(x: float) -> int:
        if x_hi == x_lo:
            return 0
        return int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    legend = []
    for idx, (name, values) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in zip(xs, values):
            if log_y and y <= 0:
                continue
            row = _scale(y, lo, hi, height, log_y)
            grid[height - 1 - row][col_of(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    axis_hi = f"{hi:,.0f}" if hi >= 10 else f"{hi:.2f}"
    axis_lo = f"{lo:,.0f}" if lo >= 10 else f"{lo:.2f}"
    scale_note = "log" if log_y else "linear"
    lines.append(f"{y_label} [{axis_lo} .. {axis_hi}] ({scale_note} scale)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_lo} .. {x_hi}    " + "   ".join(legend)
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line trend glyph string (8-level blocks) for quick tables."""
    blocks = " ▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if len(values) > width:
        # Downsample by striding.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    out = []
    for v in values:
        level = 0 if hi == lo else int((v - lo) / (hi - lo) * 8)
        out.append(blocks[min(level, 8)])
    return "".join(out)
