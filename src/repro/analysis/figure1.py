"""Regeneration of Figure 1: the CC-vs-TC landscape of all known bounds.

Figure 1 in the paper is an illustration of five objects as functions of the
TC budget ``b``:

* the brute-force upper bound (``N logN`` at ``b = O(1)``);
* the folklore upper bound (``f logN`` at ``b = O(f)``);
* the paper's new upper bound ``O(f/b log^2 N + log^2 N)`` (a genuine
  tunable curve over ``b``);
* the paper's new lower bound ``Omega(f/(b logb) + logN/logb)``;
* the previous lower bound ``Omega(f/(b^2 logb))``.

:func:`figure1_data` samples the analytic curves; :func:`figure1_measured`
adds *measured* CC of the three executable protocols on a concrete
topology, which is what our reproduction can check against the curves'
shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graphs.topology import Topology
from ..lowerbound import bounds
from .sweep import SweepPoint, random_schedule_factory, run_point


@dataclass
class Figure1Data:
    """Sampled analytic curves over a ``b`` grid."""

    n: int
    f: int
    bs: List[int]
    curves: Dict[str, List[float]]

    def as_series(self) -> Dict[str, Sequence[float]]:
        return dict(self.curves)


def figure1_data(n: int, f: int, bs: Sequence[int]) -> Figure1Data:
    """Sample every Figure 1 curve on the grid ``bs``."""
    curves = {
        name: [fn(n, f, b) for b in bs] for name, fn in bounds.CURVES.items()
    }
    curves["gap_ratio"] = [
        bounds.gap_ratio(n, f, b) for b in bs
    ]
    curves["polylog_ceiling"] = [
        bounds.polylog_gap_ceiling(n, b) for b in bs
    ]
    return Figure1Data(n=n, f=f, bs=list(bs), curves=curves)


@dataclass
class Figure1Measured:
    """Measured protocol costs to overlay on the analytic curves."""

    topology_name: str
    n: int
    f: int
    #: Algorithm 1's measured mean CC per ``b``.
    tradeoff: List[SweepPoint]
    #: Brute force's measured CC (TC is fixed at 2c flooding rounds).
    bruteforce: SweepPoint
    #: Folklore's measured CC (TC is up to ~2c(f+1) flooding rounds).
    folklore: SweepPoint


def figure1_measured(
    topology: Topology,
    f: int,
    bs: Sequence[int],
    seeds: Sequence[int],
    c: int = 2,
) -> Figure1Measured:
    """Measure the three executable protocols for the Figure 1 overlay."""
    seeds = list(seeds)
    tradeoff = []
    for b in bs:
        factory = random_schedule_factory(f, horizon=b * topology.diameter)
        tradeoff.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=factory,
                f=f,
                b=b,
                c=c,
                coords={"b": b},
            )
        )
    horizon = 2 * c * topology.diameter
    bf = run_point(
        "bruteforce",
        topology,
        seeds,
        schedule_factory=random_schedule_factory(f, horizon=horizon),
        c=c,
        coords={"b": "O(1)"},
    )
    fl_horizon = (f + 1) * (2 * c * topology.diameter + 2)
    fl = run_point(
        "folklore",
        topology,
        seeds,
        schedule_factory=random_schedule_factory(f, horizon=fl_horizon),
        f=f,
        c=c,
        coords={"b": "O(f)"},
    )
    return Figure1Measured(
        topology_name=topology.name,
        n=topology.n_nodes,
        f=f,
        tradeoff=tradeoff,
        bruteforce=bf,
        folklore=fl,
    )
