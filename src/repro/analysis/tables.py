"""Plain-text rendering of experiment tables and series.

Benchmarks print the same rows/series the paper reports; these helpers keep
that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [
        [_fmt(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    series: Dict[str, Sequence[float]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render several aligned series (Figure-style data) as a table."""
    rows = []
    for i, x in enumerate(xs):
        row: Dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)
