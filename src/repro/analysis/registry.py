"""The experiment registry: one record per reproduction experiment.

A single source of truth tying together the experiment ids used across
DESIGN.md / EXPERIMENTS.md, the benchmark modules that regenerate them,
the results files they write, and the paper artifact each one validates.
Tests use it to guarantee the documentation, benches, and results never
drift apart.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Experiment:
    """One entry of the reproduction's per-experiment index."""

    exp_id: str
    paper_artifact: str
    claim: str
    bench_module: str
    results_files: Tuple[str, ...]


EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        "E1",
        "Figure 1",
        "CC-vs-TC landscape: UB decay, bounds bracket, polylog gap, baseline points",
        "bench_figure1_tradeoff.py",
        ("figure1_analytic.txt", "figure1_measured.txt"),
    ),
    Experiment(
        "E2",
        "Table 2",
        "AGG/VERI guarantee matrix holds in every trial",
        "bench_table2_guarantees.py",
        ("table2_guarantees.txt",),
    ),
    Experiment(
        "E3",
        "Theorems 3 & 6",
        "AGG <= 11c / VERI <= 8c flooding rounds; CC O((t+1)logN) under budgets",
        "bench_agg_veri_cost.py",
        ("agg_veri_cost_vs_t.txt", "agg_veri_cost_vs_n.txt"),
    ),
    Experiment(
        "E4",
        "Theorem 1",
        "Algorithm 1 CC ~ f/b log^2 N + log^2 N (fit R^2 > 0.9), always correct",
        "bench_theorem1_scaling.py",
        (
            "theorem1_cc_vs_b.txt",
            "theorem1_cc_vs_f.txt",
            "theorem1_cc_vs_n.txt",
        ),
    ),
    Experiment(
        "E5",
        "Intro baselines",
        "brute force N logN / O(1) TC; folklore f logN / O(f) TC; TAG incorrect",
        "bench_baselines.py",
        (
            "baselines_bruteforce.txt",
            "baselines_folklore.txt",
            "baselines_tag.txt",
            "baselines_gossip.txt",
        ),
    ),
    Experiment(
        "E6",
        "Theorems 8/10/12",
        "UNIONSIZECP n/q shape; reduction overhead O(logn + logq)",
        "bench_lowerbound_twoparty.py",
        (
            "twoparty_unionsize_vs_q.txt",
            "twoparty_unionsize_vs_n.txt",
            "twoparty_reduction_overhead.txt",
        ),
    ),
    Experiment(
        "E7",
        "Lemma 11 / Theorem 9",
        "rank(M(q)) = q-1 exactly; |S| <= (q-1)^n exhaustively; rectangle chain",
        "bench_sperner.py",
        ("sperner_rank.txt", "sperner_exhaustive.txt", "sperner_rectangles.txt"),
    ),
    Experiment(
        "E8",
        "Unknown-f extension",
        "early termination: cost tracks actual failures, zero errors",
        "bench_unknown_f.py",
        ("unknown_f_early_termination.txt",),
    ),
    Experiment(
        "E9",
        "CAAF generality (Section 2)",
        "SUM/COUNT/MAX/OR identical cost profile, all correct",
        "bench_caaf.py",
        ("caaf_generality.txt",),
    ),
    Experiment(
        "E10",
        "Design ablation (Sections 4.2/4.3, Figure 3)",
        "speculation prevents loss; witnesses prevent double counting",
        "bench_ablation_speculation.py",
        ("ablation_speculation.txt",),
    ),
    Experiment(
        "E11",
        "Section 2 reduction (Patt-Shamir)",
        "SELECTION/MEDIAN exact within ceil(log domain) COUNT probes",
        "bench_quantiles.py",
        ("quantiles_selection.txt",),
    ),
    Experiment(
        "E12",
        "Worst-case definition of CC",
        "hill-climbed schedules cost more; zero-error never falsified",
        "bench_adversary_search.py",
        ("adversary_search.txt",),
    ),
    Experiment(
        "E13",
        "Section 7 simulation argument",
        "cut transcript / boundary size lower-bounds bottleneck CC",
        "bench_cut_simulation.py",
        ("cut_simulation.txt",),
    ),
    Experiment(
        "E14",
        "Theorem 2's logN/logb term ([7])",
        "timing codes: encoder >= counting bound, both ~ logN/logb",
        "bench_timing_encoding.py",
        ("timing_encoding.txt",),
    ),
    Experiment(
        "E15",
        "Motivating deployment",
        "periodic aggregation stays correct as the network decays",
        "bench_monitoring.py",
        ("monitoring.txt",),
    ),
    Experiment(
        "E16",
        "FT_0's max over topologies",
        "Algorithm 1 correct and budget-bounded across extreme families",
        "bench_topologies.py",
        ("topology_sweep.txt",),
    ),
    Experiment(
        "E17",
        "Section 3's probabilistic analysis",
        "< x/2 poisonable intervals; fallback rate <= 1/N; geometric pairs",
        "bench_interval_selection.py",
        ("interval_selection.txt",),
    ),
    Experiment(
        "E18",
        "Future work: necessity of diam(H) <= c*d",
        "violated assumption -> accepted-wrong results; honest c -> zero error",
        "bench_c_necessity.py",
        ("c_necessity.txt",),
    ),
    Experiment(
        "E19",
        "Section 2's crash-only fault model is load-bearing",
        "injected message faults -> silent-wrong; strict monitors -> all caught",
        "bench_chaos_resilience.py",
        ("chaos_resilience.txt",),
    ),
    Experiment(
        "E20",
        "Forensics: chaos failures hinge on a handful of fault decisions",
        "ddmin shrinks 89-714 recorded events to 1-4 decisive ones, "
        "1-minimal and strict-replayable",
        "bench_shrink_effectiveness.py",
        ("e20_shrink_effectiveness.txt",),
    ),
    Experiment(
        "E21",
        "Self-healing runtime: recovery outside the model, priced separately",
        "reliable transport restores exactness at unchanged protocol CC; "
        "root failover yields certified partials covering the surviving component",
        "bench_recovery.py",
        ("e21_recovery_tradeoff.txt", "e21_root_failover.txt"),
    ),
    Experiment(
        "E22",
        "Reproduction infrastructure: parallel execution engine",
        "jobs in {1,2,4,8} and warm-cache replay are byte-identical; "
        "orchestration >= 2x at 4 workers, warm cache >= 10x",
        "bench_exec_speedup.py",
        ("e22_exec_speedup.txt",),
    ),
    Experiment(
        "E23",
        "Message integrity: corruption outside the model, detected in-band",
        "checksum/mac detect 100% of delivered corruptions at every swept "
        "rate with zero silent-wrong results; overhead is framing+tag only "
        "(mac > checksum > off) and protocol CC is unchanged when clean",
        "bench_integrity.py",
        ("e23_integrity.txt",),
    ),
    Experiment(
        "E24",
        "Churn-tolerant epochs: exactly-once aggregation under rejoins",
        "exact results at every churn rate <= 0.2 (durable and mixed "
        "rejoins) with zero double-count / lost-contribution verdicts; a "
        "durable blip's protocol CC equals the clean transport baseline "
        "bit-for-bit (all repair traffic books as overhead)",
        "bench_churn_epochs.py",
        ("e24_churn_epochs.txt", "e24_churn_cc_isolation.txt"),
    ),
    Experiment(
        "E25",
        "Gray-failure resilience: slow-but-alive nodes vs the detector",
        "exact results at stall severities <= 2x in every transport arm "
        "with zero false-suspect / unbounded-stall verdicts; adaptive "
        "RTOs finish in under half the fixed-window rounds at identical "
        "protocol CC, and a clean run's hedged CC equals the unhedged "
        "baseline bit-for-bit",
        "bench_gray_failures.py",
        ("e25_gray_failures.txt", "e25_gray_hedge_cc.txt"),
    ),
    Experiment(
        "E26",
        "Reproduction infrastructure: unified observability",
        "disabled capture within 2% of baseline wall clock and phase-level "
        "tracing within 10%, with run records bit-identical across every "
        "detail level and same-seed traces byte-identical",
        "bench_obs_overhead.py",
        ("e26_obs_overhead.txt",),
    ),
    Experiment(
        "E27",
        "Byzantine-tolerant aggregation: equivocation vs the witnesses",
        "every delivered result exact or within its certified influence "
        "bound (|error| <= b*v_max) across all attack modes and random "
        "compromise rates, with zero false-conviction / "
        "undetected-equivocation / influence-exceeded verdicts; outright "
        "equivocation and omission end in conviction and eviction, and a "
        "zero-compromise armed run's protocol CC is bit-identical to the "
        "unarmed baseline (witness echoes book as overhead only)",
        "bench_byzantine.py",
        ("e27_byzantine.txt", "e27_byz_cc_isolation.txt"),
    ),
)


def by_id(exp_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"E7"``)."""
    for experiment in EXPERIMENTS:
        if experiment.exp_id == exp_id:
            return experiment
    raise KeyError(f"unknown experiment {exp_id!r}")


def benchmarks_dir() -> str:
    """Absolute path of the benchmarks directory."""
    return os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks")
    )


def index_table() -> List[Dict[str, str]]:
    """The per-experiment index as table rows (used by docs and tests)."""
    return [
        {
            "id": e.exp_id,
            "paper artifact": e.paper_artifact,
            "bench": e.bench_module,
            "claim": e.claim,
        }
        for e in EXPERIMENTS
    ]
