"""Least-squares fits of measured costs to the paper's closed forms.

The benchmarks assert *shape*; this module quantifies it.  The key fit is
Theorem 1's two-term form::

    CC(b) ~= alpha * (f/b) * log^2 N  +  beta * log^2 N

fitted over a ``b`` sweep with non-negative coefficients, reporting R².
Generic power-law fitting (``y = a * x^k``) backs the N- and f-scaling
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """Coefficients plus goodness-of-fit for one model."""

    model: str
    coefficients: Tuple[float, ...]
    r_squared: float
    predictions: Tuple[float, ...]

    def predict_label(self) -> str:
        coef = ", ".join(f"{c:.3g}" for c in self.coefficients)
        return f"{self.model} [{coef}] R^2={self.r_squared:.3f}"


def _r_squared(ys: np.ndarray, preds: np.ndarray) -> float:
    residual = float(np.sum((ys - preds) ** 2))
    total = float(np.sum((ys - np.mean(ys)) ** 2))
    if total == 0:
        return 1.0 if residual == 0 else 0.0
    return 1.0 - residual / total


def fit_linear_basis(
    ys: Sequence[float], basis: Sequence[Sequence[float]], model: str
) -> FitResult:
    """Non-negative least squares over an explicit basis matrix.

    ``basis[j][i]`` is basis function ``j`` evaluated at sample ``i``.
    Non-negativity is enforced by projected refitting: coefficients that
    come out negative are clamped to zero and the fit is redone without
    them (adequate for our 2-term models).
    """
    y = np.asarray(ys, dtype=float)
    b_mat = np.asarray(basis, dtype=float).T  # samples x terms
    active = list(range(b_mat.shape[1]))
    coeffs = np.zeros(b_mat.shape[1])
    for _ in range(b_mat.shape[1] + 1):
        if not active:
            break
        sub = b_mat[:, active]
        sol, *_ = np.linalg.lstsq(sub, y, rcond=None)
        if np.all(sol >= 0):
            for idx, value in zip(active, sol):
                coeffs[idx] = value
            break
        worst = active[int(np.argmin(sol))]
        active.remove(worst)
    preds = b_mat @ coeffs
    return FitResult(
        model=model,
        coefficients=tuple(float(c) for c in coeffs),
        r_squared=_r_squared(y, preds),
        predictions=tuple(float(p) for p in preds),
    )


def fit_theorem1_b_sweep(
    bs: Sequence[int], ccs: Sequence[float], n: int, f: int
) -> FitResult:
    """Fit ``CC = alpha * (f/b) log^2 N + beta * log^2 N`` over a b sweep."""
    log2n = math.log2(max(2, n)) ** 2
    basis = [
        [f / b * log2n for b in bs],
        [log2n for _ in bs],
    ]
    return fit_linear_basis(ccs, basis, model="alpha*(f/b)log^2N + beta*log^2N")


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a * x^k`` by log-log linear regression."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit needs positive samples")
    k, log_a = np.polyfit(np.log(x), np.log(y), 1)
    preds = np.exp(log_a) * x**k
    return FitResult(
        model="a*x^k",
        coefficients=(float(np.exp(log_a)), float(k)),
        r_squared=_r_squared(y, preds),
        predictions=tuple(float(p) for p in preds),
    )


def fit_affine(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a + b*x`` (used for the CC-linear-in-t claim)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    b, a = np.polyfit(x, y, 1)
    preds = a + b * x
    return FitResult(
        model="a + b*x",
        coefficients=(float(a), float(b)),
        r_squared=_r_squared(y, preds),
        predictions=tuple(float(p) for p in preds),
    )


def shape_report(
    bs: Sequence[int], ccs: Sequence[float], n: int, f: int
) -> Dict[str, float]:
    """One-stop summary used by benches: Theorem 1 fit quality plus the
    empirical decay exponent of the b sweep."""
    t1 = fit_theorem1_b_sweep(bs, ccs, n, f)
    power = fit_power_law(bs, ccs)
    return {
        "theorem1_r2": t1.r_squared,
        "alpha": t1.coefficients[0],
        "beta": t1.coefficients[1],
        "decay_exponent": power.coefficients[1],
    }
