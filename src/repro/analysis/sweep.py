"""Parameter sweeps with seed averaging.

The paper defines CC over *average-case coin flips* but worst-case inputs
and adversary.  Experimentally we approximate by averaging the bottleneck
bits over seeds (coins and adversary samples) and also reporting the max.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..adversary.adversaries import no_failures, random_failures
from ..adversary.schedule import FailureSchedule
from ..core.caaf import CAAF, SUM
from ..graphs.topology import Topology
from .runner import RunRecord, make_inputs, run_protocol


@dataclass
class SweepPoint:
    """Aggregated statistics at one sweep coordinate."""

    coords: Dict[str, Any]
    runs: int
    cc_mean: float
    cc_max: int
    rounds_mean: float
    flooding_rounds_mean: float
    correct_rate: float
    records: List[RunRecord] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        row = dict(self.coords)
        row.update(
            runs=self.runs,
            cc_mean=round(self.cc_mean, 1),
            cc_max=self.cc_max,
            rounds_mean=round(self.rounds_mean, 1),
            flooding_rounds_mean=round(self.flooding_rounds_mean, 2),
            correct_rate=self.correct_rate,
        )
        return row


def aggregate(coords: Dict[str, Any], records: Sequence[RunRecord]) -> SweepPoint:
    """Collapse per-seed records into one :class:`SweepPoint`."""
    if not records:
        raise ValueError("no records to aggregate")
    return SweepPoint(
        coords=dict(coords),
        runs=len(records),
        cc_mean=statistics.fmean(r.cc_bits for r in records),
        cc_max=max(r.cc_bits for r in records),
        rounds_mean=statistics.fmean(r.rounds for r in records),
        flooding_rounds_mean=statistics.fmean(
            r.flooding_rounds for r in records
        ),
        correct_rate=sum(1 for r in records if r.correct) / len(records),
        records=list(records),
    )


ScheduleFactory = Callable[[Topology, random.Random], FailureSchedule]


def random_schedule_factory(
    f: int, horizon: int, respect_c: Optional[int] = None
) -> ScheduleFactory:
    """A factory producing fresh random budgeted schedules per seed."""

    def factory(topology: Topology, rng: random.Random) -> FailureSchedule:
        if f <= 0:
            return no_failures()
        return random_failures(
            topology, f, rng, first_round=1, last_round=horizon, respect_c=respect_c
        )

    return factory


def run_point(
    protocol: str,
    topology: Topology,
    seeds: Iterable[int],
    schedule_factory: Optional[ScheduleFactory] = None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    t: Optional[int] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    coords: Optional[Dict[str, Any]] = None,
) -> SweepPoint:
    """Run one sweep coordinate across seeds and aggregate."""
    records = []
    for seed in seeds:
        rng = random.Random(seed)
        inputs = make_inputs(topology, rng)
        schedule = (
            schedule_factory(topology, rng)
            if schedule_factory
            else FailureSchedule()
        )
        records.append(
            run_protocol(
                protocol,
                topology,
                inputs,
                schedule=schedule,
                f=f,
                b=b,
                t=t,
                c=c,
                caaf=caaf,
                rng=rng,
            )
        )
    base = {"protocol": protocol, "topology": topology.name}
    base.update(coords or {})
    return aggregate(base, records)


def sweep_b(
    topology: Topology,
    f: int,
    bs: Sequence[int],
    seeds: Iterable[int],
    horizon_factor: int = 1,
    c: int = 2,
) -> List[SweepPoint]:
    """Measured CC of Algorithm 1 across a TC-budget grid (Figure 1's x-axis).

    The adversary re-samples random failures inside each run's full time
    horizon so longer budgets face proportionally spread failures.
    """
    points = []
    seeds = list(seeds)
    for b in bs:
        factory = random_schedule_factory(f, horizon=b * topology.diameter)
        points.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=factory,
                f=f,
                b=b,
                c=c,
                coords={"b": b, "f": f, "n": topology.n_nodes},
            )
        )
    return points


def sweep_f(
    topology: Topology,
    fs: Sequence[int],
    b: int,
    seeds: Iterable[int],
    c: int = 2,
) -> List[SweepPoint]:
    """Measured CC of Algorithm 1 across a failure-budget grid."""
    points = []
    seeds = list(seeds)
    for f in fs:
        factory = random_schedule_factory(f, horizon=b * topology.diameter)
        points.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=factory,
                f=f,
                b=b,
                c=c,
                coords={"b": b, "f": f, "n": topology.n_nodes},
            )
        )
    return points
