"""Parameter sweeps with seed averaging and crash-safe execution.

The paper defines CC over *average-case coin flips* but worst-case inputs
and adversary.  Experimentally we approximate by averaging the bottleneck
bits over seeds (coins and adversary samples) and also reporting the max.

Sweeps run through :func:`repro.analysis.runner.safe_run_protocol`: a run
that raises or hangs becomes an error *row* (graded incorrect) instead of
killing the sweep, optionally bounded by a per-run wall-clock timeout and
retried with fresh coins.  Passing a :class:`repro.analysis.checkpoint.
SweepCheckpoint` makes progress durable: each completed run is appended to
a JSONL file and a resumed sweep re-executes only the missing runs,
yielding the identical record set as an uninterrupted sweep.

Passing an ``engine`` (:class:`repro.exec.ExecutionEngine`) fans the
whole grid's *(coordinate, seed)* work units out over a process pool
with content-addressed result caching; every unit is self-seeded, so the
aggregated points — and the checkpoint file — are bit-identical to the
serial path for any worker count.  The engine path requires declarative
specs (it cannot ship ``schedule_factory``/``injector_factory`` closures
to worker processes); the named sweeps below build those specs
themselves.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..adversary.adversaries import no_failures, random_failures
from ..adversary.schedule import FailureSchedule
from ..core.caaf import CAAF, SUM
from ..graphs.topology import Topology
from .checkpoint import SweepCheckpoint, make_key
from .runner import RunRecord, make_inputs, safe_run_protocol


@dataclass
class SweepPoint:
    """Aggregated statistics at one sweep coordinate."""

    coords: Dict[str, Any]
    runs: int
    cc_mean: float
    cc_max: int
    rounds_mean: float
    flooding_rounds_mean: float
    correct_rate: float
    records: List[RunRecord] = field(default_factory=list)
    errors: int = 0
    #: Recovery-semantics columns (populated only when some record ran
    #: under transport/recovery): partial-status rows and certified rows.
    partial_rows: int = 0
    certified_rows: int = 0
    overhead_mean: float = 0.0
    #: Churn-semantics columns (populated only when some record ran under
    #: the churn epoch manager): exact rows and exactly-once audit totals.
    exact_rows: int = 0
    double_counts: int = 0
    lost_contributions: int = 0
    churn_rows: int = 0
    #: Byzantine-semantics columns (populated only when some record ran
    #: under the witness runtime): rows with a taint ledger, total
    #: convictions, and oracle violations (must stay zero).
    byz_rows: int = 0
    convictions: int = 0
    byz_violations: int = 0

    def as_dict(self) -> Dict[str, Any]:
        row = dict(self.coords)
        row.update(
            runs=self.runs,
            cc_mean=round(self.cc_mean, 1),
            cc_max=self.cc_max,
            rounds_mean=round(self.rounds_mean, 1),
            flooding_rounds_mean=round(self.flooding_rounds_mean, 2),
            correct_rate=self.correct_rate,
        )
        if self.errors:
            row["errors"] = self.errors
        if self.partial_rows or self.certified_rows:
            row["partial_rows"] = self.partial_rows
            row["certified_rows"] = self.certified_rows
        if self.overhead_mean:
            row["overhead_mean"] = round(self.overhead_mean, 1)
        if self.churn_rows:
            row["exact_rows"] = self.exact_rows
            row["double_counts"] = self.double_counts
            row["lost_contributions"] = self.lost_contributions
        if self.byz_rows:
            row["byz_rows"] = self.byz_rows
            row["convictions"] = self.convictions
            row["byz_violations"] = self.byz_violations
        return row


def aggregate(coords: Dict[str, Any], records: Sequence[RunRecord]) -> SweepPoint:
    """Collapse per-seed records into one :class:`SweepPoint`.

    Error rows count toward ``runs`` and drag down ``correct_rate`` (a run
    that crashed did not produce a correct result) but are excluded from
    the cost statistics, which describe completed executions only.
    """
    if not records:
        raise ValueError("no records to aggregate")
    clean = [r for r in records if not r.failed]
    cost = clean or records
    overheads = [
        r.extra["overhead_bits"] for r in clean if "overhead_bits" in r.extra
    ]
    return SweepPoint(
        coords=dict(coords),
        runs=len(records),
        cc_mean=statistics.fmean(r.cc_bits for r in cost),
        cc_max=max(r.cc_bits for r in cost),
        rounds_mean=statistics.fmean(r.rounds for r in cost),
        flooding_rounds_mean=statistics.fmean(
            r.flooding_rounds for r in cost
        ),
        correct_rate=sum(1 for r in records if r.correct) / len(records),
        records=list(records),
        errors=len(records) - len(clean),
        partial_rows=sum(
            1 for r in clean if r.extra.get("status") == "partial"
        ),
        certified_rows=sum(1 for r in clean if r.extra.get("certified")),
        overhead_mean=statistics.fmean(overheads) if overheads else 0.0,
        exact_rows=sum(1 for r in clean if r.extra.get("status") == "exact"),
        double_counts=sum(
            int(r.extra.get("double_counted") or 0) for r in clean
        ),
        lost_contributions=sum(
            int(r.extra.get("lost_contributions") or 0) for r in clean
        ),
        churn_rows=sum(1 for r in clean if "double_counted" in r.extra),
        byz_rows=sum(1 for r in clean if "false_convictions" in r.extra),
        convictions=sum(int(r.extra.get("convicted") or 0) for r in clean),
        byz_violations=sum(
            int(r.extra.get("false_convictions") or 0)
            + int(r.extra.get("undetected_equivocations") or 0)
            + int(r.extra.get("influence_exceeded") or 0)
            for r in clean
        ),
    )


ScheduleFactory = Callable[[Topology, random.Random], FailureSchedule]


def random_schedule_factory(
    f: int, horizon: int, respect_c: Optional[int] = None
) -> ScheduleFactory:
    """A factory producing fresh random budgeted schedules per seed."""

    def factory(topology: Topology, rng: random.Random) -> FailureSchedule:
        if f <= 0:
            return no_failures()
        return random_failures(
            topology, f, rng, first_round=1, last_round=horizon, respect_c=respect_c
        )

    return factory


def random_schedule_spec(
    f: int, horizon: int, respect_c: Optional[int] = None
) -> Dict[str, Any]:
    """The declarative twin of :func:`random_schedule_factory`.

    Work units carry this spec across process boundaries;
    :func:`repro.exec.scheduler.build_schedule` materializes it with the
    identical rng consumption, so factory and spec produce the same
    schedule from the same seed.
    """
    return {
        "kind": "random",
        "f": f,
        "first_round": 1,
        "last_round": horizon,
        "respect_c": respect_c,
    }


def point_units(
    protocol: str,
    topology: Topology,
    seeds: Iterable[int],
    schedule_spec: Optional[Dict[str, Any]] = None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    t: Optional[int] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    coords: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    inject: Optional[str] = None,
    corrupt: Optional[str] = None,
    capture_dir: Optional[str] = None,
    transport=None,
    recovery=None,
    integrity=None,
    churn=None,
    churn_policy=None,
    gray=None,
    byz=None,
    byz_config=None,
    allow_root_crash: bool = False,
) -> List:
    """Build the per-seed work units of one sweep coordinate."""
    from ..exec.scheduler import WorkUnit

    return [
        WorkUnit(
            protocol=protocol,
            topology=topology,
            seed=seed,
            f=f,
            b=b,
            t=t,
            c=c,
            caaf=caaf.name,
            schedule=dict(schedule_spec) if schedule_spec else {"kind": "none"},
            inject=inject,
            corrupt=corrupt,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            capture_dir=capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=churn,
            churn_policy=churn_policy,
            gray=gray,
            byz=byz,
            byz_config=byz_config,
            allow_root_crash=allow_root_crash,
            coords=dict(coords or {}),
        )
        for seed in seeds
    ]


def run_point(
    protocol: str,
    topology: Topology,
    seeds: Iterable[int],
    schedule_factory: Optional[ScheduleFactory] = None,
    f: Optional[int] = None,
    b: Optional[int] = None,
    t: Optional[int] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    coords: Optional[Dict[str, Any]] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    injector_factory: Optional[Callable[[int], Sequence]] = None,
    capture_dir: Optional[str] = None,
    transport=None,
    recovery=None,
    integrity=None,
    churn=None,
    churn_policy=None,
    gray=None,
    byz=None,
    byz_config=None,
    allow_root_crash: bool = False,
    engine=None,
    schedule_spec: Optional[Dict[str, Any]] = None,
    inject: Optional[str] = None,
    corrupt: Optional[str] = None,
) -> SweepPoint:
    """Run one sweep coordinate across seeds and aggregate.

    Runs in strict-model validation would reject the random adversaries a
    sweep samples (they may exceed the ``c``-stretch assumption), so
    sweeps run with ``strict=False`` and grade correctness post-hoc.

    ``checkpoint`` makes the point resumable: completed seeds are served
    from the JSONL file, and every fresh run is appended to it.
    ``injector_factory(seed)`` attaches per-seed fault-injection
    middleware (e.g. ``lambda s: [MessageFaults(drop=0.05, seed=s)]``).
    ``capture_dir`` auto-captures a repro bundle for every failing row
    (see :func:`repro.analysis.runner.safe_run_protocol`); the bundle
    path is stored in the row's ``extra["bundle"]`` and survives the
    checkpoint round-trip.

    ``engine`` switches to the parallel execution engine; the schedule
    and injectors must then be declarative (``schedule_spec`` /
    ``inject``) rather than factory closures.
    """
    base = {"protocol": protocol, "topology": topology.name}
    base.update(coords or {})
    if engine is not None:
        if schedule_factory is not None or injector_factory is not None:
            raise ValueError(
                "the engine path needs declarative schedule_spec/inject, "
                "not factory callables (closures cannot cross processes)"
            )
        units = point_units(
            protocol,
            topology,
            seeds,
            schedule_spec=schedule_spec,
            f=f,
            b=b,
            t=t,
            c=c,
            caaf=caaf,
            coords=coords,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            inject=inject,
            corrupt=corrupt,
            capture_dir=capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=churn,
            churn_policy=churn_policy,
            gray=gray,
            byz=byz,
            byz_config=byz_config,
            allow_root_crash=allow_root_crash,
        )
        return aggregate(base, engine.run(units, checkpoint=checkpoint))
    records = []
    for seed in seeds:
        key = make_key(protocol, topology.name, seed, coords)
        if checkpoint is not None:
            cached = checkpoint.get(key)
            if cached is not None:
                records.append(cached)
                continue
        rng = random.Random(seed)
        inputs = make_inputs(topology, rng)
        schedule = (
            schedule_factory(topology, rng)
            if schedule_factory
            else FailureSchedule()
        )
        # Churn draws sit between the schedule and the injectors — the
        # same rng slot repro.exec.scheduler.execute_unit uses, so serial
        # and pool runs see identical churn timelines.
        from ..exec.scheduler import (
            materialize_byz,
            materialize_churn,
            materialize_gray,
        )

        seed_churn = materialize_churn(churn, topology, rng)
        seed_gray = materialize_gray(gray, topology, rng)
        seed_byz = materialize_byz(byz, topology, rng)
        injectors = list(injector_factory(seed)) if injector_factory else []
        if corrupt:
            from ..sim.faults import MessageCorruption

            injectors.append(MessageCorruption.from_spec(corrupt, seed=seed))
        record = safe_run_protocol(
            protocol,
            topology,
            inputs,
            schedule=schedule,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            seed=seed,
            rng=rng,
            f=f,
            b=b,
            t=t,
            c=c,
            caaf=caaf,
            strict=False,
            injectors=injectors,
            capture_dir=capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=seed_churn,
            churn_policy=churn_policy,
            gray=seed_gray,
            byz=seed_byz,
            byz_config=byz_config,
            allow_root_crash=allow_root_crash,
        )
        record.seed = seed
        if checkpoint is not None:
            checkpoint.put(key, record)
        records.append(record)
    return aggregate(base, records)


def sweep_b(
    topology: Topology,
    f: int,
    bs: Sequence[int],
    seeds: Iterable[int],
    horizon_factor: int = 1,
    c: int = 2,
    checkpoint: Optional[SweepCheckpoint] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    capture_dir: Optional[str] = None,
    transport=None,
    recovery=None,
    integrity=None,
    churn=None,
    churn_policy=None,
    gray=None,
    corrupt: Optional[str] = None,
    byz=None,
    byz_config=None,
    allow_root_crash: bool = False,
    engine=None,
) -> List[SweepPoint]:
    """Measured CC of Algorithm 1 across a TC-budget grid (Figure 1's x-axis).

    The adversary re-samples random failures inside each run's full time
    horizon so longer budgets face proportionally spread failures.
    ``transport`` / ``recovery`` run every point under the resilience
    runtime (see :func:`repro.analysis.runner.run_protocol`); the points
    then carry partial/certified counts and mean retransmit overhead.

    With an ``engine``, the whole ``bs x seeds`` grid fans out as one
    batch of work units (pool-wide longest-first scheduling), and the
    aggregated points — and any checkpoint file — are bit-identical to
    the serial path.
    """
    seeds = list(seeds)
    if engine is not None:
        return _sweep_grid(
            topology,
            [(b, f) for b in bs],
            seeds,
            c=c,
            checkpoint=checkpoint,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            capture_dir=capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=churn,
            churn_policy=churn_policy,
            gray=gray,
            corrupt=corrupt,
            byz=byz,
            byz_config=byz_config,
            allow_root_crash=allow_root_crash,
            engine=engine,
        )
    points = []
    for b in bs:
        horizon = b * topology.diameter
        factory = random_schedule_factory(f, horizon=horizon)
        points.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=factory,
                f=f,
                b=b,
                c=c,
                coords={"b": b, "f": f, "n": topology.n_nodes},
                checkpoint=checkpoint,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                capture_dir=capture_dir,
                transport=transport,
                recovery=recovery,
                integrity=integrity,
                churn=_churn_for(churn, horizon),
                churn_policy=churn_policy,
                gray=_gray_for(gray, horizon),
                corrupt=corrupt,
                byz=_byz_for(byz, horizon),
                byz_config=byz_config,
                allow_root_crash=allow_root_crash,
            )
        )
    return points


def _churn_for(churn, horizon: int):
    """A random-churn spec pinned to one coordinate's time horizon.

    Explicit spec strings / schedules pass through; a random spec without
    a caller-chosen horizon is stretched to the coordinate's run length
    so churn density stays comparable across budgets.
    """
    if isinstance(churn, dict) and "horizon" not in churn:
        return dict(churn, horizon=horizon)
    return churn


def _gray_for(gray, horizon: int):
    """A random-gray spec pinned to one coordinate's time horizon
    (same rule as :func:`_churn_for`)."""
    if isinstance(gray, dict) and "horizon" not in gray:
        return dict(gray, horizon=horizon)
    return gray


def _byz_for(byz, horizon: int):
    """A random-Byzantine spec pinned to one coordinate's time horizon
    (same rule as :func:`_churn_for`)."""
    if isinstance(byz, dict) and "horizon" not in byz:
        return dict(byz, horizon=horizon)
    return byz


def sweep_churn(
    topology: Topology,
    b: int,
    f: int,
    rates: Sequence[float],
    seeds: Iterable[int],
    amnesiac: float = 0.25,
    flap_rate: float = 0.0,
    c: int = 2,
    checkpoint: Optional[SweepCheckpoint] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    capture_dir: Optional[str] = None,
    churn_policy=None,
    engine=None,
) -> List[SweepPoint]:
    """Exactness and overhead of the churn epoch manager across churn rates.

    Every point runs ``algorithm1`` under the churn runtime
    (:mod:`repro.resilience.epochs`) with a per-seed random churn
    timeline — each non-root node crashes and revives with probability
    ``rate``, an ``amnesiac`` fraction of rejoins losing state, and each
    edge flapping with probability ``flap_rate``.  Points carry the
    exactly-once audit totals (``double_counts`` / ``lost_contributions``
    — both must stay zero) and the exact-row count used by the E24
    acceptance gate (durable churn at rate <= 0.05 stays >= 95% exact).

    Accepts an ``engine`` exactly like :func:`sweep_b`; the churn spec
    travels declaratively and is sampled in the worker from the same rng
    slot the serial path uses.
    """
    seeds = list(seeds)
    horizon = b * topology.diameter
    points = []
    for rate in rates:
        churn_spec = {
            "kind": "random",
            "rate": rate,
            "horizon": horizon,
            "amnesiac": amnesiac,
            "flap_rate": flap_rate,
        }
        coords = {
            "b": b,
            "f": f,
            "n": topology.n_nodes,
            "churn": rate,
            "amnesiac": amnesiac,
        }
        points.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=(
                    random_schedule_factory(f, horizon=horizon)
                    if engine is None
                    else None
                ),
                f=f,
                b=b,
                c=c,
                coords=coords,
                checkpoint=checkpoint,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                capture_dir=capture_dir,
                churn=churn_spec,
                churn_policy=churn_policy,
                engine=engine,
                schedule_spec=(
                    random_schedule_spec(f, horizon=horizon)
                    if engine is not None
                    else None
                ),
            )
        )
    return points


def _sweep_grid(
    topology: Topology,
    bf_pairs: Sequence,
    seeds: Sequence[int],
    *,
    c: int,
    checkpoint: Optional[SweepCheckpoint],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float = 0.0,
    capture_dir: Optional[str] = None,
    transport=None,
    recovery=None,
    integrity=None,
    churn=None,
    churn_policy=None,
    gray=None,
    corrupt: Optional[str] = None,
    byz=None,
    byz_config=None,
    allow_root_crash: bool = False,
    engine=None,
) -> List[SweepPoint]:
    """Engine path shared by :func:`sweep_b` and :func:`sweep_f`.

    Builds one work unit per *(coordinate, seed)* — unit order matches
    the serial iteration order exactly, which keeps checkpoint files
    byte-identical — runs them all through the engine, then aggregates
    per coordinate.
    """
    units = []
    for b, f in bf_pairs:
        coords = {"b": b, "f": f, "n": topology.n_nodes}
        units.extend(
            point_units(
                "algorithm1",
                topology,
                seeds,
                schedule_spec=random_schedule_spec(
                    f, horizon=b * topology.diameter
                ),
                f=f,
                b=b,
                c=c,
                coords=coords,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                capture_dir=capture_dir,
                transport=transport,
                recovery=recovery,
                integrity=integrity,
                churn=_churn_for(churn, b * topology.diameter),
                churn_policy=churn_policy,
                gray=_gray_for(gray, b * topology.diameter),
                corrupt=corrupt,
                byz=_byz_for(byz, b * topology.diameter),
                byz_config=byz_config,
                allow_root_crash=allow_root_crash,
            )
        )
    records = engine.run(units, checkpoint=checkpoint)
    points = []
    per_point = len(seeds)
    for i, (b, f) in enumerate(bf_pairs):
        base = {
            "protocol": "algorithm1",
            "topology": topology.name,
            "b": b,
            "f": f,
            "n": topology.n_nodes,
        }
        points.append(
            aggregate(base, records[i * per_point : (i + 1) * per_point])
        )
    return points


def sweep_f(
    topology: Topology,
    fs: Sequence[int],
    b: int,
    seeds: Iterable[int],
    c: int = 2,
    checkpoint: Optional[SweepCheckpoint] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    capture_dir: Optional[str] = None,
    engine=None,
) -> List[SweepPoint]:
    """Measured CC of Algorithm 1 across a failure-budget grid.

    Accepts an ``engine`` exactly like :func:`sweep_b`.
    """
    seeds = list(seeds)
    if engine is not None:
        return _sweep_grid(
            topology,
            [(b, f) for f in fs],
            seeds,
            c=c,
            checkpoint=checkpoint,
            timeout_s=timeout_s,
            retries=retries,
            capture_dir=capture_dir,
            engine=engine,
        )
    points = []
    for f in fs:
        factory = random_schedule_factory(f, horizon=b * topology.diameter)
        points.append(
            run_point(
                "algorithm1",
                topology,
                seeds,
                schedule_factory=factory,
                f=f,
                b=b,
                c=c,
                coords={"b": b, "f": f, "n": topology.n_nodes},
                checkpoint=checkpoint,
                timeout_s=timeout_s,
                retries=retries,
                capture_dir=capture_dir,
            )
        )
    return points
