"""Summary statistics for seed-averaged measurements.

The paper's CC definition averages over coin flips; our sweeps estimate
that expectation from finitely many seeded runs.  This module provides the
uncertainty quantification the benches report: means with standard errors,
normal-approximation and bootstrap confidence intervals, and a two-sample
comparison helper used to claim "protocol A beats protocol B" honestly.
"""

from __future__ import annotations

import math
import random
import statistics as _stats
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Mean with uncertainty for one measured quantity."""

    n: int
    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two confidence intervals overlap."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.stderr:.1f} (95% CI [{self.ci_low:.1f}, {self.ci_high:.1f}])"


#: Two-sided 95% normal quantile.
Z_95 = 1.96


def summarize(samples: Sequence[float]) -> Summary:
    """Mean, standard deviation, and a 95% normal-approximation CI."""
    values = list(samples)
    if not values:
        raise ValueError("no samples")
    n = len(values)
    mean = _stats.fmean(values)
    std = _stats.stdev(values) if n > 1 else 0.0
    stderr = std / math.sqrt(n) if n > 1 else 0.0
    return Summary(
        n=n,
        mean=mean,
        std=std,
        stderr=stderr,
        ci_low=mean - Z_95 * stderr,
        ci_high=mean + Z_95 * stderr,
    )


def bootstrap_ci(
    samples: Sequence[float],
    rng: Optional[random.Random] = None,
    resamples: int = 1000,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean — no normality assumption.

    Appropriate for CC samples, whose distribution is skewed (a few seeds
    hit extra AGG+VERI pairs or the brute-force fallback).
    """
    values = list(samples)
    if not values:
        raise ValueError("no samples")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng or random.Random(0)
    n = len(values)
    means = sorted(
        _stats.fmean(rng.choices(values, k=n)) for _ in range(resamples)
    )
    alpha = (1 - confidence) / 2
    lo_idx = max(0, int(alpha * resamples))
    hi_idx = min(resamples - 1, int((1 - alpha) * resamples))
    return means[lo_idx], means[hi_idx]


def significantly_less(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """Whether sample ``a``'s mean is below ``b``'s with non-overlapping
    95% CIs — the conservative "A beats B" criterion the benches use."""
    sa, sb = summarize(a), summarize(b)
    return sa.mean < sb.mean and not sa.overlaps(sb)


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean (for ratio-style series like per-b speedups)."""
    values = [v for v in samples]
    if not values:
        raise ValueError("no samples")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive samples")
    return math.exp(_stats.fmean(math.log(v) for v in values))
