"""Two-party simulation of distributed protocols across a graph cut.

This is the *mechanism* behind Section 7's lower bound: a SUM protocol on a
topology whose node set splits into an Alice side and a Bob side yields a
two-party protocol — Alice simulates her nodes, Bob his, and the only
communication they need is the messages broadcast by nodes adjacent to the
cut.  Hence any two-party lower bound on a problem encodable into inputs /
failures on the two sides lower-bounds the distributed protocol's
communication across the cut, and (dividing by the number of cut nodes and
rounds) its per-node CC.

We implement the simulation harness generically: run any
:class:`repro.sim.node.NodeHandler` protocol under a cut partition and
account, per round, every bit that must cross between the two simulators.
The bench (E13) uses it on bottleneck topologies to compare measured
cut-crossing traffic with the Theorem 2 terms.

Note: [4]'s specific promise-to-failures gadget is not reproduced in this
paper's text; this harness executes the simulation argument itself, which
is the step both papers share (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..graphs.topology import Topology
from ..sim.message import Envelope
from ..sim.network import Network
from ..sim.node import NodeHandler


@dataclass
class CutTranscript:
    """Bits exchanged between the two simulating parties."""

    alice_to_bob_bits: int = 0
    bob_to_alice_bits: int = 0
    rounds: int = 0
    per_round: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return self.alice_to_bob_bits + self.bob_to_alice_bits


class CutSimulation:
    """Runs a protocol while accounting cross-cut communication.

    Args:
        topology: The full graph.
        handlers: One handler per node (any protocol).
        alice_nodes: The node set Alice simulates; Bob gets the rest.
        crash_rounds: Optional oblivious failure schedule.

    The simulation is *exact*: it simply runs the real network and charges
    to the transcript every part broadcast by a node with at least one
    neighbour on the other side (that broadcast must be shipped to the
    other simulator verbatim for it to stay in sync — the standard
    simulation argument).
    """

    def __init__(
        self,
        topology: Topology,
        handlers: Mapping[int, NodeHandler],
        alice_nodes: Iterable[int],
        crash_rounds: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.topology = topology
        self.alice: Set[int] = set(alice_nodes)
        unknown = self.alice - set(topology.adjacency)
        if unknown:
            raise ValueError(f"alice_nodes outside the graph: {sorted(unknown)}")
        self.bob: Set[int] = set(topology.adjacency) - self.alice
        if not self.alice or not self.bob:
            raise ValueError("both sides of the cut must be non-empty")
        #: Nodes whose broadcasts cross the cut.
        self.boundary: Set[int] = {
            u
            for u in topology.adjacency
            if any(
                (v in self.bob) if u in self.alice else (v in self.alice)
                for v in topology.neighbours(u)
            )
        }
        self.network = Network(topology.adjacency, handlers, crash_rounds)
        self.transcript = CutTranscript()

    @property
    def cut_edges(self) -> List[Tuple[int, int]]:
        """Edges with endpoints on different sides."""
        return [
            (u, v)
            for (u, v) in self.topology.edges()
            if (u in self.alice) != (v in self.alice)
        ]

    def run(self, max_rounds: int, stop_on_output: bool = True) -> CutTranscript:
        """Run the protocol, filling the cut transcript."""
        for _ in range(max_rounds):
            self.network.step()
            rnd = self.network.round
            a2b = b2a = 0
            for sender, parts in self.network._in_flight:
                if sender not in self.boundary:
                    continue
                bits = sum(p.bits for p in parts)
                if sender in self.alice:
                    a2b += bits
                else:
                    b2a += bits
            self.transcript.alice_to_bob_bits += a2b
            self.transcript.bob_to_alice_bits += b2a
            self.transcript.per_round.append((a2b, b2a))
            self.transcript.rounds = rnd
            if stop_on_output and any(
                h.wants_to_stop() for h in self.network.handlers.values()
            ):
                break
        return self.transcript


def split_by_bfs_half(topology: Topology) -> Set[int]:
    """A canonical cut: the root-closest half of the nodes (Alice's side).

    On bottleneck shapes (paths, barbells) this isolates the bridge, which
    is where the lower-bound pressure concentrates.
    """
    ordered = sorted(topology.nodes(), key=lambda u: (topology.levels[u], u))
    half = len(ordered) // 2
    return set(ordered[:half])


def per_node_cut_lower_bound(
    transcript: CutTranscript, n_boundary_nodes: int
) -> float:
    """The simulation argument's final step: cut traffic divided by the
    number of boundary nodes lower-bounds some node's total sends."""
    if n_boundary_nodes < 1:
        raise ValueError("need at least one boundary node")
    return transcript.total_bits / n_boundary_nodes
