"""Timing codes: the ``Θ(logN / logb)`` information-vs-bits phenomenon.

Theorem 2's second term comes from Impagliazzo-Williams [7]: with
synchronized clocks, *when* a message is sent carries information, so
delivering ``k`` bits of information within ``b`` rounds needs only
``Ω(k / logb)`` actual transmitted bits — and that is tight.

This module makes both directions executable:

* :func:`encode_by_timing` / :func:`decode_by_timing` — the matching upper
  bound: a sender conveys a ``k``-bit value to a listener by transmitting
  ``ceil(k / floor(log2 b))`` single-bit beacons, each beacon's *round
  index* carrying ``floor(log2 b)`` payload bits.
* :func:`timing_channel_capacity` — the counting bound: ``m`` transmissions
  within ``b`` rounds can realize at most ``C(b, m) * 2^m`` distinct
  transcripts, so conveying ``k`` bits forces
  ``m >= k / log2(2b)`` transmissions — the lower-bound direction,
  checkable exactly for small parameters.

The SUM connection: the root must learn a result from a domain of size
``Ω(N)``, i.e. ``Ω(logN)`` bits, within ``b`` flooding rounds — hence some
node sends ``Ω(logN / logb)`` actual bits no matter how clever the
protocol.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import List, Sequence, Tuple


def bits_per_beacon(b: int) -> int:
    """Payload bits one beacon's round index can carry: ``floor(log2 b)``."""
    if b < 2:
        raise ValueError("need at least 2 rounds for timing to carry bits")
    return int(math.floor(math.log2(b)))


def beacons_needed(k: int, b: int) -> int:
    """Transmissions needed to convey ``k`` bits within windows of ``b`` rounds."""
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return 0
    return math.ceil(k / bits_per_beacon(b))


def encode_by_timing(value: int, k: int, b: int) -> List[int]:
    """Encode a ``k``-bit ``value`` as a schedule of beacon rounds.

    The value is split into ``floor(log2 b)``-bit digits; digit ``j`` is
    transmitted as one beacon in round ``digit + 1`` of window ``j`` (each
    window spans ``b`` rounds).  Returns absolute beacon rounds.
    """
    if not 0 <= value < (1 << k):
        raise ValueError(f"value {value} does not fit in {k} bits")
    digit_bits = bits_per_beacon(b)
    rounds = []
    remaining = value
    for window in range(beacons_needed(k, b)):
        digit = remaining & ((1 << digit_bits) - 1)
        remaining >>= digit_bits
        rounds.append(window * b + digit + 1)
    return rounds


def decode_by_timing(beacon_rounds: Sequence[int], k: int, b: int) -> int:
    """Invert :func:`encode_by_timing`."""
    digit_bits = bits_per_beacon(b)
    value = 0
    for window, rnd in enumerate(beacon_rounds):
        offset = rnd - window * b - 1
        if not 0 <= offset < (1 << digit_bits):
            raise ValueError(f"beacon round {rnd} outside window {window}")
        value |= offset << (window * digit_bits)
    if value >= (1 << k):
        raise ValueError("decoded value exceeds the declared bit width")
    return value


def transmitted_bits(beacon_rounds: Sequence[int]) -> int:
    """Actual bits sent: one per beacon (the beacon body is a single bit)."""
    return len(beacon_rounds)


def timing_channel_capacity(b: int, m: int) -> int:
    """Distinct transcripts achievable with ``m`` single-bit messages in
    ``b`` rounds: choose the ``m`` rounds, then each message body is a bit.

    ``C(b, m) * 2^m`` — the counting argument behind the lower bound.
    """
    if m < 0 or b < 1:
        raise ValueError("need b >= 1 and m >= 0")
    if m > b:
        return 0
    return math.comb(b, m) * (1 << m)


def min_messages_for(k: int, rounds: int) -> int:
    """Smallest ``m`` with ``timing_channel_capacity(rounds, m) >= 2^k`` —
    the exact lower bound on transmissions for conveying ``k`` bits within
    a horizon of ``rounds`` rounds.

    Note ``rounds`` is the *whole* horizon (the encoder of
    :func:`encode_by_timing` uses ``beacons_needed(k, b) * b`` rounds).
    """
    target = 1 << k
    m = 0
    while timing_channel_capacity(rounds, m) < target:
        m += 1
        if m > rounds:
            raise ValueError(
                f"{k} bits cannot be conveyed in {rounds} rounds at all"
            )
    return m


def sum_output_entropy_bits(n: int) -> int:
    """The SUM result's entropy floor: the domain has ``Ω(N)`` values."""
    return max(1, math.ceil(math.log2(n)))


def theorem2_second_term(n: int, b: int) -> float:
    """The ``logN / logb`` quantity itself (in bits)."""
    return sum_output_entropy_bits(n) / max(1.0, math.log2(max(2, b)))
