"""EQUALITYCP and the Theorem 8 reduction to UNIONSIZECP.

``EQUALITYCP(n, q)`` is UNIONSIZECP's sibling: same cycle-promise inputs,
but Alice must decide whether ``X = Y``.  The paper introduces it because
its rectangle structure is what the Sperner-capacity argument (Theorem 9 /
Lemma 11) bounds, and Theorem 8 transfers that bound to UNIONSIZECP::

    R_0(EQUALITYCP) <= R_0(UNIONSIZECP) + O(log q) + O(log n)

The reduction's observation: from the union size Alice can tell whether a
wrap position (``X_j = q-1, Y_j = 0``) exists; if not, the promise loses
its "mod q" and ``X = Y  iff  sum(X) = sum(Y)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .twoparty import Transcript, TwoPartyProtocol, bits_for_domain
from .unionsizecp import check_cycle_promise, union_size


def strings_equal(x: Sequence[int], y: Sequence[int]) -> bool:
    """Ground truth for EQUALITYCP."""
    return tuple(x) == tuple(y)


class TrivialEquality(TwoPartyProtocol):
    """Alice ships ``X``; Bob answers (baseline)."""

    name = "trivial-equality"

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ValueError("q >= 2 required")
        self.q = q

    def run(self, x, y) -> Tuple[bool, Transcript]:
        if not check_cycle_promise(x, y, self.q):
            raise ValueError("inputs violate the cycle promise")
        tr = Transcript()
        tr.alice_sends("X", len(x) * bits_for_domain(self.q))
        answer = strings_equal(x, y)
        tr.bob_sends("answer", 1)
        return answer, tr


class ReductionEquality(TwoPartyProtocol):
    """Theorem 8's protocol: solve EQUALITYCP via a UNIONSIZECP oracle.

    Steps (exactly the proof of Theorem 8):

    1. Invoke the oracle UNIONSIZECP protocol on ``(X, Y)``.
    2. Bob sends ``sum(Y)`` (``log n + log q`` bits) and ``z``, the count of
       zeros in ``Y`` (``log n`` bits).
    3. Alice outputs ``X = Y`` iff ``sum(X) = sum(Y)`` and the union size
       equals ``n - z``.
    """

    name = "equality-via-unionsize"

    def __init__(self, q: int, oracle: TwoPartyProtocol) -> None:
        if q < 2:
            raise ValueError("q >= 2 required")
        self.q = q
        self.oracle = oracle

    def run(self, x, y) -> Tuple[bool, Transcript]:
        if not check_cycle_promise(x, y, self.q):
            raise ValueError("inputs violate the cycle promise")
        n = len(x)
        usc, tr = self.oracle.run(x, y)

        sum_bits = bits_for_domain(max(2, n * self.q + 1))
        count_bits = bits_for_domain(n + 1)
        tr.bob_sends("sum(Y)", sum_bits)
        z = sum(1 for yi in y if yi == 0)
        tr.bob_sends("zero-count", count_bits)

        answer = (sum(x) == sum(y)) and (usc == n - z)
        return answer, tr

    def overhead_bits(self, n: int) -> int:
        """The reduction's additive cost beyond the oracle: ``O(log q + log n)``."""
        return bits_for_domain(max(2, n * self.q + 1)) + bits_for_domain(n + 1)
