"""UNIONSIZECP: the two-party problem behind the paper's SUM lower bound.

In ``UNIONSIZECP(n, q)`` Alice holds ``X`` and Bob holds ``Y``, both strings
of ``n`` characters from ``[0, q-1]`` satisfying the *cycle promise*: for
every position ``i``, either ``Y_i = X_i`` or ``Y_i = (X_i + 1) mod q``.
The goal (Alice learns it) is ``|{i : X_i != 0 or Y_i != 0}|``.

The paper proves ``R_0(UNIONSIZECP) = Omega(n/q) - O(log n)`` (Theorem 12,
via EQUALITYCP and Sperner capacity) against the known
``O(n/q * log n + log q)`` upper bound from [4].  [4]'s protocol is not
reproduced in this paper's text, so we implement (see DESIGN.md):

* :class:`TrivialUnionSize` — Alice ships ``X`` (``n * ceil(log q)`` bits);
* :class:`WrapPositionUnionSize` — cost ``O(w log n + log n)`` where ``w``
  is the number of wrap positions (``X_i = q - 1``); on uniform
  promise-respecting inputs ``E[w] = n/q``, matching the upper bound's
  shape on the hard distribution.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from .twoparty import Transcript, TwoPartyProtocol, bits_for_domain


def check_cycle_promise(x: Sequence[int], y: Sequence[int], q: int) -> bool:
    """Whether ``(x, y)`` satisfies the cycle promise for alphabet size ``q``."""
    if len(x) != len(y):
        return False
    return all(
        0 <= xi < q and (yi == xi or yi == (xi + 1) % q)
        for xi, yi in zip(x, y)
    )


def union_size(x: Sequence[int], y: Sequence[int]) -> int:
    """Ground truth: ``|{i : X_i != 0 or Y_i != 0}|``."""
    return sum(1 for xi, yi in zip(x, y) if xi != 0 or yi != 0)


def random_instance(
    n: int, q: int, rng: random.Random
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """A uniform cycle-promise instance: ``X`` uniform, each ``Y_i`` a fair
    coin between ``X_i`` and ``X_i + 1 mod q``.

    This is the hard distribution family used in the paper's information-
    theoretic predecessors; the wrap-position count concentrates at ``n/q``.
    """
    if n < 1 or q < 2:
        raise ValueError("need n >= 1 and q >= 2")
    x = tuple(rng.randrange(q) for _ in range(n))
    y = tuple(
        xi if rng.random() < 0.5 else (xi + 1) % q for xi in x
    )
    return x, y


def equal_instance(
    n: int, q: int, rng: random.Random
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """An instance with ``Y = X`` (still promise-respecting)."""
    x = tuple(rng.randrange(q) for _ in range(n))
    return x, x


class TrivialUnionSize(TwoPartyProtocol):
    """Alice sends her whole string; Bob replies with the answer.

    ``n ceil(log q) + ceil(log(n+1))`` bits — the baseline the q-dependent
    protocols are measured against.
    """

    name = "trivial"

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ValueError("q >= 2 required")
        self.q = q

    def run(self, x, y) -> Tuple[int, Transcript]:
        if not check_cycle_promise(x, y, self.q):
            raise ValueError("inputs violate the cycle promise")
        tr = Transcript()
        n = len(x)
        tr.alice_sends("X", n * bits_for_domain(self.q))
        answer = union_size(x, y)
        tr.bob_sends("answer", bits_for_domain(n + 1))
        return answer, tr


class WrapPositionUnionSize(TwoPartyProtocol):
    """The wrap-position protocol (our stand-in for [4]'s upper bound).

    Under the cycle promise, ``X_i = 0 and Y_i = 0`` can only happen at
    positions where ``Y_i = 0``, and then ``X_i`` is 0 or ``q - 1`` (the
    wrap).  So::

        answer = n - |{i : Y_i = 0}| + |{i : X_i = q-1 and Y_i = 0}|

    Alice sends her wrap positions (``w ceil(log n)`` bits plus a count);
    Bob replies with ``z = |{i : Y_i = 0}|`` and the wrap overlap.  On the
    uniform promise distribution ``E[w] = n/q``, giving expected cost
    ``O(n/q log n + log n)`` — the upper-bound shape the paper quotes.
    """

    name = "wrap-position"

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ValueError("q >= 2 required")
        self.q = q

    def run(self, x, y) -> Tuple[int, Transcript]:
        if not check_cycle_promise(x, y, self.q):
            raise ValueError("inputs violate the cycle promise")
        tr = Transcript()
        n = len(x)
        pos_bits = bits_for_domain(max(n, 2))
        count_bits = bits_for_domain(n + 1)

        wraps = [i for i, xi in enumerate(x) if xi == self.q - 1]
        tr.alice_sends("wrap-count", count_bits)
        tr.alice_sends("wrap-positions", len(wraps) * pos_bits)

        z = sum(1 for yi in y if yi == 0)
        overlap = sum(1 for i in wraps if y[i] == 0)
        tr.bob_sends("z", count_bits)
        tr.bob_sends("overlap", count_bits)

        answer = n - z + overlap
        return answer, tr


def wrap_count(x: Sequence[int], q: int) -> int:
    """Number of wrap positions (``X_i = q - 1``) — the protocol's cost driver."""
    return sum(1 for xi in x if xi == q - 1)
