"""Newman's theorem ([15]), executable: public coins -> private coins.

Theorem 10's proof uses Newman's theorem: "a public coin protocol using
``k`` bits can always be simulated via private coins while using
``O(k + loglog |input domain|)`` bits".  The mechanism: a public-coin
protocol with error ``eps`` admits a *small fixed set* of coin seeds
(size ``O(log |domain| / eps^2)``) such that picking a uniform seed from
the set keeps the error below ``2 eps`` on **every** input; Alice can
then sample the seed privately and ship its index — ``log`` of the set
size, i.e. ``O(loglog |domain|)`` extra bits.

This module makes every step concrete for small instances:

* :class:`PublicCoinEquality` — the classic public-coin protocol for
  EQUALITY (random-subset parity fingerprints, error 1/2 per repetition);
* :func:`find_seed_set` — derandomization: search for a seed set whose
  *worst-case over all inputs* error is below the target (verified
  exhaustively, so the guarantee is unconditional for the instance);
* :class:`NewmanSimulation` — the private-coin simulation: seed index +
  the original transcript, with the predicted ``log |seeds|`` overhead.

The protocols here have one-sided error (they are the standard textbook
objects, not the paper's zero-error SUM protocols); they exist to execute
the [15] step of the lower-bound chain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Callable, List, Optional, Sequence, Tuple

from .twoparty import Transcript, bits_for_domain


def parity_fingerprint(x: Sequence[int], mask: Sequence[int], q: int) -> int:
    """A 1-bit fingerprint: parity of ``sum(mask_i * x_i) mod q``-ish mix.

    We hash each character into bits via the mask and fold to one parity
    bit; equal strings always agree, and for ``x != y`` a uniform mask
    disagrees with probability 1/2 (tested exhaustively in the suite).
    """
    acc = 0
    for xi, mi in zip(x, mask):
        acc ^= bin(xi & mi).count("1") & 1
    return acc


def random_mask(n: int, q: int, rng: random.Random) -> Tuple[int, ...]:
    """A uniform mask with one word per character position."""
    width = max(1, (q - 1).bit_length())
    return tuple(rng.randrange(1 << width) for _ in range(n))


@dataclass
class PublicCoinEquality:
    """Public-coin EQUALITY with ``repetitions`` fingerprint rounds.

    Error: declares unequal strings "equal" with probability at most
    ``2^-repetitions`` (one-sided); equal strings are always accepted.
    The transcript is ``repetitions + 1`` bits — independent of ``n``,
    which is the whole point of public coins.
    """

    n: int
    q: int
    repetitions: int = 4

    def run_with_coins(
        self, x: Sequence[int], y: Sequence[int], rng: random.Random
    ) -> Tuple[bool, Transcript]:
        """Execute with an explicit shared coin source."""
        tr = Transcript()
        verdict = True
        for _ in range(self.repetitions):
            mask = random_mask(self.n, self.q, rng)
            bit_a = parity_fingerprint(x, mask, self.q)
            tr.alice_sends("fingerprint", 1)
            bit_b = parity_fingerprint(y, mask, self.q)
            if bit_a != bit_b:
                verdict = False
        tr.bob_sends("verdict", 1)
        return verdict, tr

    def error_on(
        self, x: Sequence[int], y: Sequence[int], seed: int
    ) -> bool:
        """Whether the protocol errs on ``(x, y)`` under coin seed ``seed``."""
        verdict, _ = self.run_with_coins(x, y, random.Random(seed))
        truth = tuple(x) == tuple(y)
        return verdict != truth


def all_input_pairs(n: int, q: int) -> List[Tuple[tuple, tuple]]:
    """Every input pair of the (tiny) universe — for exhaustive checking."""
    strings = list(product(range(q), repeat=n))
    return [(x, y) for x in strings for y in strings]


def worst_case_error(
    protocol: PublicCoinEquality, seeds: Sequence[int]
) -> float:
    """The max over inputs of the fraction of seeds on which the protocol
    errs — Newman's quantity, computed exactly."""
    pairs = all_input_pairs(protocol.n, protocol.q)
    worst = 0.0
    for x, y in pairs:
        errors = sum(protocol.error_on(x, y, seed) for seed in seeds)
        worst = max(worst, errors / len(seeds))
    return worst


def find_seed_set(
    protocol: PublicCoinEquality,
    target_error: float,
    set_size: int,
    rng: Optional[random.Random] = None,
    attempts: int = 50,
) -> List[int]:
    """Find a fixed seed set realizing Newman's theorem for the instance.

    Samples candidate sets and *verifies exhaustively* that the worst-case
    error stays below ``target_error``; the probabilistic argument says a
    random set of size ``O(log(#inputs)/eps^2)`` works with high
    probability, so a few attempts suffice.
    """
    rng = rng or random.Random(0)
    for _ in range(attempts):
        seeds = [rng.randrange(1 << 30) for _ in range(set_size)]
        if worst_case_error(protocol, seeds) <= target_error:
            return seeds
    raise RuntimeError(
        f"no seed set of size {set_size} reached error {target_error}; "
        "increase set_size"
    )


@dataclass
class NewmanSimulation:
    """The private-coin simulation of a public-coin protocol.

    Alice privately samples an index into the fixed ``seeds`` list, sends
    it (``ceil(log2 |seeds|)`` bits — the ``O(loglog domain)`` overhead),
    and both parties run the original protocol with that seed.
    """

    protocol: PublicCoinEquality
    seeds: List[int]

    @property
    def overhead_bits(self) -> int:
        """Extra bits vs the public-coin protocol: the seed index."""
        return bits_for_domain(len(self.seeds))

    def run(
        self, x: Sequence[int], y: Sequence[int], rng: random.Random
    ) -> Tuple[bool, Transcript]:
        """Private-coin execution: seed index + original transcript."""
        index = rng.randrange(len(self.seeds))
        verdict, tr = self.protocol.run_with_coins(
            x, y, random.Random(self.seeds[index])
        )
        tr.alice_sends("seed-index", self.overhead_bits)
        return verdict, tr

    def worst_case_error(self) -> float:
        """Exhaustive worst-case error of the simulation (over the seed
        choice) — Newman guarantees at most twice the public-coin error."""
        return worst_case_error(self.protocol, self.seeds)
