"""Sperner-capacity machinery behind Lemma 11 and Theorem 9.

Theorem 9 (adapted from Calderbank et al.): any set ``S`` of strings in
``[0, q-1]^n`` that is *pairwise confusable-free* under the cycle relation —
for every pair there is a coordinate where ``V`` differs from both ``W`` and
``W + 1 (mod q)``, and symmetrically — has ``|S| <= rank(M)^n`` for every
matrix ``M`` with ones on the diagonal, zeros at distances 2..q-1 around the
cycle, and arbitrary values on the superdiagonal/corner.

Lemma 11 instantiates ``M`` with ``-1`` on the free entries, shows
``rank(M) = q - 1``, and concludes that EQUALITYCP's 1-entries need at least
``q^n / (q-1)^n`` monochromatic rectangles — hence
``R_0^pri(EQUALITYCP) >= n log(1 + 1/(q-1)) >= n / (q - 1)``.

This module builds ``M``, verifies its rank numerically and symbolically,
computes the lemma's bound, and — for tiny ``(n, q)`` — exhaustively
verifies Theorem 9 itself with a maximum-clique search over the
compatibility graph.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np


def sperner_matrix(q: int, free_value: float = -1.0) -> np.ndarray:
    """The ``q x q`` matrix of Theorem 9 with the paper's choice of entries.

    ``M[i][i] = 1``; ``M[i][j] = 0`` whenever ``(j - i) mod q`` is in
    ``{2, .., q-1}``; the remaining entries (``M[i][(i+1) mod q]``) are set
    to ``free_value`` (Lemma 11 uses ``-1``).
    """
    if q < 2:
        raise ValueError("q >= 2 required")
    m = np.zeros((q, q))
    for i in range(q):
        m[i][i] = 1.0
        m[i][(i + 1) % q] = free_value
    return m


def sperner_rank(q: int, free_value: float = -1.0) -> int:
    """Numerical rank of :func:`sperner_matrix` — Lemma 11 claims ``q - 1``
    when ``free_value = -1``."""
    return int(np.linalg.matrix_rank(sperner_matrix(q, free_value)))


def rank_is_q_minus_1(q: int) -> bool:
    """Lemma 11's two-step rank argument, checked exactly.

    (i) all ``q`` rows sum to the zero row (so rank <= q-1), and (ii) the
    first ``q - 1`` rows are linearly independent (checked via the rank of
    the integer submatrix computed exactly over the rationals with
    ``fractions``-free Gaussian elimination on integers).
    """
    m = sperner_matrix(q).astype(int)
    if not np.all(m.sum(axis=0) == 0):
        return False
    sub = [list(row) for row in m[: q - 1]]
    return _integer_rank(sub) == q - 1


def _integer_rank(rows: List[List[int]]) -> int:
    """Exact rank of an integer matrix by fraction-free elimination."""
    rows = [list(r) for r in rows]
    rank = 0
    n_cols = len(rows[0]) if rows else 0
    col = 0
    while rank < len(rows) and col < n_cols:
        pivot = next(
            (r for r in range(rank, len(rows)) if rows[r][col] != 0), None
        )
        if pivot is None:
            col += 1
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        for r in range(rank + 1, len(rows)):
            if rows[r][col] != 0:
                a, b = rows[rank][col], rows[r][col]
                rows[r] = [a * x - b * y for x, y in zip(rows[r], rows[rank])]
        rank += 1
        col += 1
    return rank


def lemma11_bound(n: int, q: int) -> float:
    """Lemma 11's lower bound on ``R_0^pri(EQUALITYCP)``:
    ``n * log2(1 + 1/(q-1))`` (which is at least ``n / (q - 1)`` natural-log
    bits; the paper states the weaker ``n/(q-1)`` form)."""
    if q < 2:
        raise ValueError("q >= 2 required")
    return n * math.log2(1 + 1 / (q - 1))


def confusable(v: Sequence[int], w: Sequence[int], q: int) -> bool:
    """Whether ``(v, w)`` FAILS the Theorem 9 pair condition.

    ``v`` and ``w`` may share a monochromatic rectangle (are "confusable")
    unless there exist coordinates ``i`` and ``j`` with
    ``v_i != w_i, v_i != w_i + 1 (mod q)`` and ``w_j != v_j,
    w_j != v_j + 1 (mod q)``.
    """
    if tuple(v) == tuple(w):
        return False
    cond_i = any(
        vi != wi and vi != (wi + 1) % q for vi, wi in zip(v, w)
    )
    cond_j = any(
        wj != vj and wj != (vj + 1) % q for vj, wj in zip(v, w)
    )
    return not (cond_i and cond_j)


def max_sperner_family_size(n: int, q: int) -> int:
    """Exhaustive maximum size of a Theorem 9-compliant family ``S``.

    Branch-and-bound maximum clique over the compatibility graph on
    ``q^n`` strings.  Only feasible for tiny ``(n, q)`` — the tests and the
    Sperner bench use it to confirm ``|S| <= (q-1)^n``.
    """
    strings = list(product(range(q), repeat=n))
    count = len(strings)
    compatible = [
        set(
            j
            for j in range(count)
            if j != i and not confusable(strings[i], strings[j], q)
        )
        for i in range(count)
    ]
    best = [0]

    def extend(clique_size: int, candidates: Set[int]) -> None:
        if clique_size + len(candidates) <= best[0]:
            return
        if not candidates:
            best[0] = max(best[0], clique_size)
            return
        pool = sorted(candidates)
        while pool:
            if clique_size + len(pool) <= best[0]:
                return
            v = pool.pop()
            extend(clique_size + 1, set(pool) & compatible[v])

    extend(0, set(range(count)))
    return best[0]


def theorem9_bound(n: int, q: int) -> int:
    """The bound Theorem 9 + Lemma 11 give on the family size: ``(q-1)^n``."""
    return (q - 1) ** n
