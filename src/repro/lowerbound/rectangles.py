"""Lemma 11's rectangle argument, executable for small instances.

Lemma 11 lower-bounds private-coin EQUALITYCP via the classic chain
``R_0^pri(h) >= N(h) >= log C^1(h)`` where ``C^1(h)`` is the smallest
number of monochromatic rectangles covering the 1-entries of ``h``'s
communication matrix.  For EQUALITYCP the matrix ``Z`` is ``q^n x q^n``
with 1s on the diagonal, 0s on promise-respecting unequal pairs, and
*undefined* entries elsewhere; a monochromatic 1-rectangle may use
undefined entries freely but no 0s.

This module builds ``Z`` explicitly, checks rectangles, and computes
``C^1`` exactly (branch and bound) for tiny ``(n, q)`` so Lemma 11's
``q^n / (q-1)^n`` bound — and Theorem 9's role in it — can be verified
end to end rather than taken on faith.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .sperner import confusable, theorem9_bound

#: Matrix cell values.
ONE, ZERO, UNDEFINED = 1, 0, None


def all_strings(n: int, q: int) -> List[Tuple[int, ...]]:
    """The input universe ``[0, q-1]^n``."""
    return list(product(range(q), repeat=n))


def promise_holds(x: Sequence[int], y: Sequence[int], q: int) -> bool:
    """Whether ``(x, y)`` satisfies the cycle promise."""
    return all(yi == xi or yi == (xi + 1) % q for xi, yi in zip(x, y))


def matrix_entry(x: Sequence[int], y: Sequence[int], q: int):
    """The EQUALITYCP matrix entry for row ``x`` (Alice), column ``y`` (Bob)."""
    if not promise_holds(x, y, q):
        return UNDEFINED
    return ONE if tuple(x) == tuple(y) else ZERO


def build_matrix(n: int, q: int) -> Dict[Tuple[tuple, tuple], Optional[int]]:
    """The full ``q^n x q^n`` EQUALITYCP matrix (small ``n, q`` only)."""
    strings = all_strings(n, q)
    if len(strings) > 256:
        raise ValueError("matrix restricted to q^n <= 256 cells per side")
    return {
        (x, y): matrix_entry(x, y, q) for x in strings for y in strings
    }


def rectangle_is_one_monochromatic(
    rows: Iterable[tuple], cols: Iterable[tuple], q: int
) -> bool:
    """Whether ``rows x cols`` contains no ZERO entry (1s/undefined only)."""
    cols = list(cols)
    for x in rows:
        for y in cols:
            if matrix_entry(x, y, q) == ZERO:
                return False
    return True


def diagonal_set_is_valid_rectangle(members: Sequence[tuple], q: int) -> bool:
    """Whether the diagonal 1-entries of ``members`` fit in one
    monochromatic rectangle (rows = cols = members).

    The proof of Lemma 11 observes this holds iff every pair of members is
    NOT cycle-separable in either direction — i.e. iff every pair is
    *confusable* in the Theorem 9 sense.
    """
    return rectangle_is_one_monochromatic(members, members, q)


def max_diagonal_rectangle(n: int, q: int) -> int:
    """Largest set of diagonal 1-entries coverable by one rectangle.

    By the Lemma 11 observation this equals the maximum Theorem 9 family
    size, so it is bounded by ``(q-1)^n``.  Exact branch-and-bound.
    """
    strings = all_strings(n, q)
    count = len(strings)
    compatible = [
        set(
            j
            for j in range(count)
            if j != i and not _separable(strings[i], strings[j], q)
        )
        for i in range(count)
    ]
    best = [1]

    def extend(size: int, candidates: set) -> None:
        if size + len(candidates) <= best[0]:
            return
        if not candidates:
            best[0] = max(best[0], size)
            return
        pool = sorted(candidates)
        while pool:
            if size + len(pool) <= best[0]:
                return
            v = pool.pop()
            extend(size + 1, set(pool) & compatible[v])

    extend(0, set(range(count)))
    return best[0]


def _separable(v: tuple, w: tuple, q: int) -> bool:
    """Whether ``Z[v,w]`` or ``Z[w,v]`` is a ZERO (blocks co-membership)."""
    return (
        matrix_entry(v, w, q) == ZERO or matrix_entry(w, v, q) == ZERO
    )


def min_rectangle_cover(n: int, q: int, limit: int = 64) -> int:
    """Exact ``C^1``: fewest monochromatic rectangles covering the diagonal.

    Greedy-free exact set cover by branch and bound over maximal
    rectangles; exponential, so only tiny ``(n, q)`` are accepted
    (``q^n <= limit``).
    """
    strings = all_strings(n, q)
    if len(strings) > limit:
        raise ValueError(f"q^n must be <= {limit} for the exact cover")
    count = len(strings)
    compatible = [
        frozenset(
            j
            for j in range(count)
            if j != i and not _separable(strings[i], strings[j], q)
        )
        for i in range(count)
    ]

    # Enumerate maximal cliques (maximal coverable diagonal sets).
    cliques: List[FrozenSet[int]] = []

    def bron_kerbosch(r: set, p: set, x: set) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: len(compatible[v] & p))
        for v in sorted(p - compatible[pivot]):
            bron_kerbosch(r | {v}, p & compatible[v], x & compatible[v])
            p = p - {v}
            x = x | {v}

    bron_kerbosch(set(), set(range(count)), set())
    cliques.sort(key=len, reverse=True)

    best = [count]  # singleton rectangles always work

    def cover(uncovered: frozenset, used: int) -> None:
        if used >= best[0]:
            return
        if not uncovered:
            best[0] = used
            return
        target = min(uncovered)
        for clique in cliques:
            if target in clique:
                cover(uncovered - clique, used + 1)

    cover(frozenset(range(count)), 0)
    return best[0]


def lemma11_cover_bound(n: int, q: int) -> float:
    """The bound Lemma 11 derives: ``C^1 >= q^n / (q-1)^n``."""
    return (q**n) / theorem9_bound(n, q)
