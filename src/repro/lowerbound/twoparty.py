"""Two-party communication framework (Section 7's substrate).

Alice holds ``X``, Bob holds ``Y``; they exchange messages over a reliable
bidirectional channel and only Alice must learn the answer.  We count every
bit either party sends; ``R_0`` of a problem is the smallest expected total
across (Las Vegas) protocols.

Protocols here are deterministic or Las Vegas and always produce the exact
answer — matching the paper's zero-error setting.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


def bits_for(value: int) -> int:
    """Bits to encode a non-negative integer ``value`` (at least 1)."""
    if value < 0:
        raise ValueError("two-party fields are non-negative integers")
    return max(1, value.bit_length())


def bits_for_domain(size: int) -> int:
    """Bits to encode one element of a domain of ``size`` values."""
    if size < 1:
        raise ValueError("domain size must be positive")
    return max(1, math.ceil(math.log2(size))) if size > 1 else 1


@dataclass
class Transcript:
    """Record of an Alice/Bob conversation."""

    alice_bits: int = 0
    bob_bits: int = 0
    messages: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        """Combined bits — the quantity ``R_0`` measures."""
        return self.alice_bits + self.bob_bits

    def alice_sends(self, label: str, bits: int) -> None:
        """Charge ``bits`` to Alice for a message described by ``label``."""
        if bits < 0:
            raise ValueError("negative message size")
        self.alice_bits += bits
        self.messages.append(("alice", label, bits))

    def bob_sends(self, label: str, bits: int) -> None:
        """Charge ``bits`` to Bob for a message described by ``label``."""
        if bits < 0:
            raise ValueError("negative message size")
        self.bob_bits += bits
        self.messages.append(("bob", label, bits))


class TwoPartyProtocol(ABC):
    """A protocol solving a two-party problem exactly."""

    name: str = "protocol"

    @abstractmethod
    def run(self, x: Tuple[int, ...], y: Tuple[int, ...]) -> Tuple[Any, Transcript]:
        """Execute on inputs ``(x, y)``; returns ``(answer, transcript)``."""


@dataclass
class TwoPartyResult:
    """One execution's outcome, for experiment tables."""

    protocol: str
    n: int
    q: int
    answer: Any
    bits: int
