"""Closed-form bound curves — everything plotted in Figure 1.

All formulas give bits per (bottleneck) node as a function of ``N``, the
edge-failure budget ``f``, and the TC budget ``b`` in flooding rounds.
Asymptotic constants are set to 1; the curves are meant for *shape*
comparisons (who wins where, where crossovers fall), exactly like Figure 1's
illustration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


def _log2(value: float) -> float:
    return math.log2(max(2.0, value))


def upper_bound_new(n: int, f: int, b: int) -> float:
    """Theorem 1's tight form:
    ``(f/b logN + logN) * min(b, f, logN)``."""
    log_n = _log2(n)
    return (f / b * log_n + log_n) * min(b, f, log_n)


def upper_bound_new_simple(n: int, f: int, b: int) -> float:
    """Theorem 1's simple form: ``f/b log^2 N + log^2 N``."""
    log_n = _log2(n)
    return f / b * log_n**2 + log_n**2


def lower_bound_new(n: int, f: int, b: int) -> float:
    """Theorem 2: ``f/(b logb) + logN/logb``."""
    log_b = _log2(b)
    return f / (b * log_b) + _log2(n) / log_b


def lower_bound_old(n: int, f: int, b: int) -> float:
    """The previous lower bound from [4]: ``f/(b^2 logb)``."""
    return f / (b**2 * _log2(b))


def upper_bound_bruteforce(n: int, f: int, b: int) -> float:
    """Brute-force protocol: ``N logN`` CC at ``O(1)`` TC (flat in ``b``)."""
    return n * _log2(n)


def upper_bound_folklore(n: int, f: int, b: int) -> float:
    """Folklore repeated tree aggregation: ``f logN`` CC at ``O(f)`` TC."""
    return f * _log2(n)


def agg_veri_budget(n: int, t: int) -> float:
    """The per-node AGG + VERI bit ceiling for tolerance ``t``:
    ``(11t+14)(logN+5) + (5t+7)(3 logN + 10)`` (Theorems 3 and 6)."""
    log_n = _log2(n)
    return (11 * t + 14) * (log_n + 5) + (5 * t + 7) * (3 * log_n + 10)


def gap_ratio(n: int, f: int, b: int) -> float:
    """Upper bound over lower bound — the paper's headline says this is at
    most ``log^2 N * log b`` (polylog), down from polynomial before."""
    return upper_bound_new(n, f, b) / lower_bound_new(n, f, b)


def polylog_gap_ceiling(n: int, b: int) -> float:
    """The paper's claimed ceiling on the gap: ``log^2 N * log b``."""
    return _log2(n) ** 2 * _log2(b)


def unionsize_lower_bound(n: int, q: int) -> float:
    """Theorem 12: ``Omega(n/q) - O(log n)`` for UNIONSIZECP."""
    return max(0.0, n / q - _log2(n))


def unionsize_upper_bound(n: int, q: int) -> float:
    """[4]'s upper bound shape for UNIONSIZECP: ``n/q logn + logq``."""
    return n / q * _log2(n) + _log2(q)


def equality_lower_bound(n: int, q: int) -> float:
    """Lemma 11: ``n log2(1 + 1/(q-1))`` for private-coin EQUALITYCP."""
    return n * math.log2(1 + 1 / (q - 1))


#: Curve registry used by the Figure 1 generator.
CURVES: Dict[str, Callable[[int, int, int], float]] = {
    "upper_bound_new": upper_bound_new,
    "upper_bound_new_simple": upper_bound_new_simple,
    "lower_bound_new": lower_bound_new,
    "lower_bound_old": lower_bound_old,
    "bruteforce": upper_bound_bruteforce,
    "folklore": upper_bound_folklore,
}


@dataclass(frozen=True)
class CurvePoint:
    """One sample of a Figure 1 curve."""

    b: int
    value: float


def sample_curve(
    name: str, n: int, f: int, bs: Sequence[int]
) -> List[CurvePoint]:
    """Sample a named curve over a ``b`` grid."""
    fn = CURVES[name]
    return [CurvePoint(b, fn(n, f, b)) for b in bs]


def crossover_b(n: int, f: int) -> float:
    """The ``b`` where Theorem 1's two terms balance: ``b ~ f``.

    Beyond ``b ~ f`` the ``log^2 N`` floor dominates and buying more time
    no longer buys communication — the knee visible in Figure 1.
    """
    return float(max(1, f))
