"""Command-line interface for the reproduction harness.

Usage (installed as ``repro-agg`` or via ``python -m repro.cli``)::

    repro-agg run       --topology grid:6x6 --protocol algorithm1 -f 8 -b 90
    repro-agg sweep-b   --topology grid:6x6 -f 10 --bs 42,84,168 --seeds 3 \
                        --jobs 4 --cache-dir .repro-cache
    repro-agg sweep-f   --topology grid:6x6 --fs 2,4,8,16 -b 60 --seeds 3
    repro-agg cache     stats --cache-dir .repro-cache
    repro-agg cache     gc --older-than 7d
    repro-agg chaos     --topology grid:5x5 --protocol unknown_f -f 4 \
                        --inject drop=0.05,dup=0.02 --seeds 5 \
                        --capture-dir bundles/
    repro-agg chaos     --topology grid:5x5 --protocol unknown_f \
                        --inject drop=0.05 --recover --allow-root-crash
    repro-agg replay    bundles/unknown_f-grid-5x5-s3-0a1b2c3d4e.json
    repro-agg shrink    bundles/unknown_f-grid-5x5-s3-0a1b2c3d4e.json \
                        --out minimal.json
    repro-agg figure1   -n 1024 -f 128 --bs 42,84,168,336 [--plot]
    repro-agg select    --topology grid:5x5 -f 4 -b 45 -k 7
    repro-agg topology  --topology geometric:100 --out field.json
    repro-agg run       --topology grid:5x5 -f 4 -b 60 \
                        --trace-out trace.json --metrics-out metrics.prom
    repro-agg obs       summarize trace.json
    repro-agg obs       validate trace.json --prom metrics.prom

Every subcommand prints the same ASCII tables the benchmarks save.
``run`` accepts ``--inject drop=0.1,dup=0.05,...`` (message-fault
middleware) and ``--strict-monitors`` (abort on any invariant break);
``sweep-b`` accepts ``--resume PATH`` for JSONL checkpoint/resume.

The execution-engine verbs (``run``, ``sweep-b``, ``sweep-f``,
``chaos``, ``worst-case``/``search``) accept ``--jobs N`` (process-pool
fan-out; results are bit-identical to ``--jobs 1``), ``--cache-dir``
(content-addressed result cache; ``--force`` recomputes), and
``--progress-log`` (structured JSONL telemetry).  ``cache`` inspects and
maintains a cache directory.

``run``, ``sweep-b``, ``sweep-f``, and ``chaos`` additionally accept
the observability flags ``--trace-out`` (span trace: Chrome
``trace_event`` JSON for Perfetto, or flat deterministic JSONL when
the path ends in ``.jsonl``), ``--metrics-out`` (Prometheus textfile
snapshot), and ``--trace-detail off|phases|messages``.  ``obs``
summarizes, diffs, ranks, and validates those artifacts.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from . import graphs
from .adversary import no_failures, random_failures
from .analysis import (
    SweepCheckpoint,
    figure1_data,
    format_series,
    format_table,
    make_inputs,
    run_protocol,
    sweep_b,
    sweep_f,
)
from .analysis.asciiplot import plot_series
from .extensions.quantiles import distributed_select
from .graphs import io as graph_io


def parse_topology(spec: str, seed: int = 0) -> graphs.Topology:
    """Parse ``kind[:args]`` specs like ``grid:6x6``, ``geometric:100``,
    ``path:20``, ``gnp:50``, ``file:/path/to.json``."""
    kind, _, arg = spec.partition(":")
    rng = random.Random(seed)
    if kind == "grid":
        rows, _, cols = arg.partition("x")
        return graphs.grid_graph(int(rows), int(cols or rows))
    if kind == "path":
        return graphs.path_graph(int(arg))
    if kind == "cycle":
        return graphs.cycle_graph(int(arg))
    if kind == "star":
        return graphs.star_graph(int(arg))
    if kind == "tree":
        branching, _, n = arg.partition(",")
        return graphs.balanced_tree(int(branching), int(n))
    if kind == "geometric":
        return graphs.random_geometric(int(arg), rng=rng)
    if kind == "regular":
        n, _, degree = arg.partition(",")
        return graphs.random_regular(int(n), int(degree or 3), rng=rng)
    if kind == "gnp":
        return graphs.gnp_connected(int(arg), rng=rng)
    if kind == "clustered":
        clusters, _, size = arg.partition("x")
        return graphs.clustered_graph(int(clusters), int(size))
    if kind == "file":
        return graph_io.load(arg)
    raise SystemExit(f"unknown topology spec {spec!r}")


def _ints(text: str) -> List[int]:
    return [int(v) for v in text.split(",") if v]


def _parse_injectors(spec: Optional[str], seed: int, corrupt: Optional[str] = None):
    """Build the injector list for the ``--inject drop=0.1,...`` and
    ``--corrupt bitflip:0.02,...`` flags."""
    injectors = []
    if spec:
        from .sim.faults import MessageFaults

        injectors.append(MessageFaults.from_spec(spec, seed=seed))
    if corrupt:
        from .sim.faults import MessageCorruption

        injectors.append(MessageCorruption.from_spec(corrupt, seed=seed))
    return tuple(injectors)


#: Activity registry for the fault/resilience flag surface: attribute
#: name -> ``(flag label, predicate)``.  A flag is *active* when its
#: predicate holds on the parsed args; only active flags participate in
#: the pairwise exclusion table below.
FAULT_FLAG_ACTIVITY = {
    "recover": ("--recover", lambda a: bool(getattr(a, "recover", False))),
    "retransmit_budget": (
        "--retransmit-budget",
        lambda a: getattr(a, "retransmit_budget", None) is not None,
    ),
    "churn": ("--churn", lambda a: bool(getattr(a, "churn", None))),
    "gray": ("--gray", lambda a: bool(getattr(a, "gray", None))),
    "corrupt": ("--corrupt", lambda a: bool(getattr(a, "corrupt", None))),
    "inject": ("--inject", lambda a: bool(getattr(a, "inject", None))),
    "rto": ("--rto adaptive", lambda a: getattr(a, "rto", "fixed") != "fixed"),
    "hedge": ("--hedge", lambda a: bool(getattr(a, "hedge", False))),
    "allow_root_crash": (
        "--allow-root-crash",
        lambda a: bool(getattr(a, "allow_root_crash", False)),
    ),
    "byz": ("--byz", lambda a: bool(getattr(a, "byz", None))),
}

#: The single shared mutual-exclusion table for fault-model flags:
#: ``(a, b, reason)`` rows over :data:`FAULT_FLAG_ACTIVITY` attributes.
#: Every verb that accepts the resilience flag group funnels through
#: :func:`validate_fault_flags`, so a new fault family adds rows here
#: instead of scattering ad-hoc checks through the config helpers.
FAULT_EXCLUSIONS = (
    (
        "churn",
        "recover",
        "the churn epoch manager assumes an immortal root",
    ),
    (
        "rto",
        "churn",
        "the churn epoch manager assumes fixed-window round arithmetic",
    ),
    (
        "hedge",
        "churn",
        "the churn epoch manager assumes fixed-window round arithmetic",
    ),
    (
        "byz",
        "recover",
        "the witness audits assume in-model delivery for honest nodes",
    ),
    (
        "byz",
        "retransmit_budget",
        "the witness audits assume in-model delivery for honest nodes",
    ),
    (
        "byz",
        "churn",
        "the witness audits assume in-model delivery for honest nodes",
    ),
    (
        "byz",
        "gray",
        "the witness audits assume in-model delivery for honest nodes",
    ),
    (
        "byz",
        "corrupt",
        "equivocation is modelled at the sender; wire corruption would "
        "blur the authenticated-frame evidence convictions stand on",
    ),
    (
        "byz",
        "inject",
        "the witness audits assume in-model delivery for honest nodes",
    ),
    (
        "byz",
        "allow_root_crash",
        "the witness protocol trusts the root as judge, so the root "
        "must stay honest and immortal",
    ),
)


def validate_fault_flags(args) -> None:
    """Reject incompatible fault-model flag pairs in one place.

    Walks :data:`FAULT_EXCLUSIONS` and raises ``SystemExit`` on the
    first pair whose two flags are both active, with the table's reason
    in the message.  Dependency checks (a knob that needs its parent
    flag) stay in the per-family ``_*_config`` helpers; this table only
    owns *exclusions*.
    """
    for a, b, reason in FAULT_EXCLUSIONS:
        label_a, active_a = FAULT_FLAG_ACTIVITY[a]
        label_b, active_b = FAULT_FLAG_ACTIVITY[b]
        if active_a(args) and active_b(args):
            raise SystemExit(
                f"error: {label_a} and {label_b} are mutually exclusive "
                f"({reason})"
            )


def _resilience_config(args):
    """``(transport, recovery, integrity)`` from the ``--recover`` /
    ``--retransmit-budget`` / ``--integrity`` flags.

    ``--recover`` gets the full self-healing stack (reliable transport +
    root failover + certified partial results); ``--retransmit-budget``
    alone gets just the transport shim.  ``--integrity checksum|mac``
    adds authenticated wire frames on top of either (or standalone);
    the MAC key is derived from ``--seed`` so runs stay deterministic.
    ``--rto adaptive`` and ``--hedge`` tune the transport's
    retransmission timing and so need one of the two transport flags.
    """
    integrity = None
    if getattr(args, "integrity", "off") != "off":
        from .integrity import IntegrityConfig

        integrity = IntegrityConfig(mode=args.integrity, key_seed=args.seed)
    budget = args.retransmit_budget
    rto = getattr(args, "rto", "fixed")
    hedge = bool(getattr(args, "hedge", False))
    if rto != "fixed" or hedge:
        flag = "--rto adaptive" if rto != "fixed" else "--hedge"
        if not args.recover and budget is None:
            raise SystemExit(
                f"error: {flag} tunes the reliable transport's "
                "retransmission timing; add --recover or "
                "--retransmit-budget N"
            )
    if args.recover:
        from .resilience import RecoveryPolicy

        policy = RecoveryPolicy.default(
            retransmit_budget=5 if budget is None else budget
        )
        if rto != "fixed" or hedge:
            import dataclasses

            policy = dataclasses.replace(
                policy,
                transport=dataclasses.replace(
                    policy.transport, rto=rto, hedge=hedge
                ),
            )
        return None, policy, integrity
    if budget is not None:
        from .resilience import TransportConfig

        return (
            TransportConfig(retransmits=budget, rto=rto, hedge=hedge),
            None,
            integrity,
        )
    return None, None, integrity


def _churn_config(args, horizon: int):
    """``(churn_spec, churn_policy)`` from the ``--churn`` family of flags.

    The spec stays declarative (string or dict) so it can ride a work
    unit across process boundaries; ``rate:<float>`` becomes the random
    spec :func:`repro.exec.scheduler.materialize_churn` samples from the
    run's seeded rng.
    """
    value = getattr(args, "churn", None)
    if not value:
        # The churn-scoped knobs are meaningless alone; reject them
        # loudly instead of silently ignoring them.
        if getattr(args, "flap_rate", 0.0):
            raise SystemExit(
                "error: --flap-rate shapes the --churn rate:<x> random "
                "draw; it does nothing without --churn"
            )
        if getattr(args, "max_epochs", None) is not None:
            raise SystemExit(
                "error: --max-epochs budgets --churn re-aggregation "
                "epochs; it does nothing without --churn"
            )
        if getattr(args, "amnesiac", None) is not None:
            raise SystemExit(
                "error: --amnesiac shapes the --churn rate:<x> random "
                "draw; it does nothing without --churn"
            )
        return None, None
    if value.startswith("rate:"):
        try:
            rate = float(value[len("rate:"):])
        except ValueError:
            raise SystemExit(f"error: bad --churn rate in {value!r}")
        spec = {
            "kind": "random",
            "rate": rate,
            "horizon": horizon,
            "amnesiac": 0.25 if args.amnesiac is None else args.amnesiac,
            "flap_rate": args.flap_rate,
        }
    else:
        spec = value
    policy = None
    if getattr(args, "max_epochs", None) is not None:
        import dataclasses

        from .resilience import ChurnPolicy

        policy = dataclasses.replace(
            ChurnPolicy.default(), max_epochs=args.max_epochs
        )
    return spec, policy


def _gray_config(args, horizon: int):
    """Gray-failure spec from ``--gray`` (declarative, rides work units).

    ``rate:<float>`` becomes the random spec
    :func:`repro.exec.scheduler.materialize_gray` samples from the run's
    seeded rng; anything else must parse as an explicit
    :class:`repro.sim.faults.GrayFailureSchedule` spec and is validated
    here so typos fail before any run starts.
    """
    value = getattr(args, "gray", None)
    if not value:
        return None
    if value.startswith("rate:"):
        try:
            rate = float(value[len("rate:"):])
        except ValueError:
            raise SystemExit(f"error: bad --gray rate in {value!r}")
        return {"kind": "random", "rate": rate, "horizon": horizon}
    from .sim.faults import GrayFailureSchedule

    try:
        GrayFailureSchedule.from_spec(value)
    except ValueError as exc:
        raise SystemExit(f"error: bad --gray spec: {exc}")
    return value


def _byz_config(args, horizon: int):
    """``(byz_spec, byz_config)`` from the ``--byz`` family of flags.

    The spec stays declarative (string or dict) so it can ride a work
    unit across process boundaries; ``rate:<float>`` becomes the random
    spec :func:`repro.exec.scheduler.materialize_byz` samples from the
    run's seeded rng, anything else must parse as an explicit
    :class:`repro.sim.faults.ByzantineSchedule` spec.  ``--witnesses`` /
    ``--evict-policy`` build the :class:`repro.resilience.
    ByzantineConfig` the witness runtime runs under.
    """
    value = getattr(args, "byz", None)
    if not value:
        # The byz-scoped knobs are meaningless alone; reject them loudly
        # instead of silently ignoring them.
        if getattr(args, "witnesses", None) is not None:
            raise SystemExit(
                "error: --witnesses sizes the --byz witness panels; it "
                "does nothing without --byz"
            )
        if getattr(args, "evict_policy", None) is not None:
            raise SystemExit(
                "error: --evict-policy picks the --byz conviction "
                "response; it does nothing without --byz"
            )
        return None, None
    if value.startswith("rate:"):
        try:
            rate = float(value[len("rate:"):])
        except ValueError:
            raise SystemExit(f"error: bad --byz rate in {value!r}")
        spec = {"kind": "random", "rate": rate, "horizon": horizon}
    else:
        from .sim.faults import ByzantineSchedule

        try:
            ByzantineSchedule.from_spec(value)
        except ValueError as exc:
            raise SystemExit(f"error: bad --byz spec: {exc}")
        spec = value
    config = None
    if (
        getattr(args, "witnesses", None) is not None
        or getattr(args, "evict_policy", None) is not None
    ):
        from .resilience import ByzantineConfig

        config = ByzantineConfig(
            witnesses=(
                2 if args.witnesses is None else args.witnesses
            ),
            evict_policy=args.evict_policy or "evict",
        )
    return spec, config


def _maybe_crash_root(schedule, topology, args, rng: random.Random):
    """With ``--allow-root-crash``, schedule a root crash mid-run.

    The crash round is drawn from the run's seeded rng, so the same seed
    always kills the root at the same point.
    """
    if not args.allow_root_crash:
        return schedule
    horizon = max(2, (args.budget or 42) * topology.diameter)
    schedule.add(topology.root, rng.randint(2, max(2, horizon // 2)))
    return schedule


def _engine_from_args(args):
    """Build an :class:`repro.exec.ExecutionEngine` from the shared
    ``--jobs`` / ``--cache-dir`` / ``--force`` / ``--progress-log`` flags.

    A live status line is painted on stderr when it is a TTY; structured
    JSONL events additionally go to ``--progress-log`` when given.  Close
    ``engine.emitter`` when the verb is done.
    """
    from .exec import (
        ExecutionEngine,
        ProgressEmitter,
        ProgressTracker,
        ResultCache,
        live_renderer,
    )

    cache = ResultCache(args.cache_dir) if getattr(args, "cache_dir", None) else None
    tracker = ProgressTracker()
    listeners = [tracker]
    try:
        interactive = sys.stderr.isatty()
    except (AttributeError, ValueError):
        interactive = False
    if interactive:
        listeners.append(live_renderer(sys.stderr, tracker))
    emitter = ProgressEmitter(
        jsonl_path=getattr(args, "progress_log", None), listeners=listeners
    )
    return ExecutionEngine(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        force=getattr(args, "force", False),
        emitter=emitter,
    )


def _obs_from_args(args: argparse.Namespace):
    """Build + activate an :class:`repro.obs.ObsCapture` from the shared
    ``--trace-out`` / ``--metrics-out`` / ``--trace-detail`` flags.

    Returns ``None`` when nothing was requested (the common path: the
    tracer module flag stays ``False`` and instrumented hot paths cost
    one attribute read).  ``--trace-detail`` defaults to ``phases``
    once an output path asks for capture; an explicit ``off`` keeps
    the metrics registry live but arms no spans.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    detail = getattr(args, "trace_detail", None)
    if not trace_out and not metrics_out:
        return None
    from .obs import ObsCapture

    cap = ObsCapture(
        seed=getattr(args, "seed", 0), detail=detail or "phases"
    )
    return cap.activate()


def _obs_finish(cap, args: argparse.Namespace) -> None:
    """Deactivate a capture and flush it to the requested sinks."""
    if cap is None:
        return
    cap.deactivate()
    cap.write(
        trace_out=getattr(args, "trace_out", None),
        metrics_out=getattr(args, "metrics_out", None),
    )


def cmd_run(args: argparse.Namespace) -> int:
    validate_fault_flags(args)
    topology = parse_topology(args.topology, args.seed)
    if args.jobs > 1 or args.cache_dir or args.force:
        return _cmd_run_engine(args, topology)
    rng = random.Random(args.seed)
    inputs = make_inputs(topology, rng, max_input=args.max_input)
    if args.failures > 0:
        schedule = random_failures(
            topology,
            args.failures,
            rng,
            first_round=1,
            last_round=max(2, (args.budget or 42) * topology.diameter),
            respect_c=2,
        )
    else:
        schedule = no_failures()
    schedule = _maybe_crash_root(schedule, topology, args, rng)
    horizon = max(2, (args.budget or 42) * topology.diameter)
    churn_spec, churn_policy = _churn_config(args, horizon=horizon)
    gray_spec = _gray_config(args, horizon=horizon)
    byz_spec, byz_config = _byz_config(args, horizon=horizon)
    from .exec.scheduler import (
        materialize_byz,
        materialize_churn,
        materialize_gray,
    )

    churn = materialize_churn(churn_spec, topology, rng)
    gray = materialize_gray(gray_spec, topology, rng)
    byz = materialize_byz(byz_spec, topology, rng)
    injectors = _parse_injectors(args.inject, args.seed, corrupt=args.corrupt)
    transport, recovery, integrity = _resilience_config(args)
    record = run_protocol(
        args.protocol,
        topology,
        inputs,
        schedule=schedule,
        f=args.failures or None,
        b=args.budget,
        t=args.tolerance,
        rng=rng,
        injectors=injectors,
        strict_monitors=args.strict_monitors,
        transport=transport,
        recovery=recovery,
        integrity=integrity,
        churn=churn,
        churn_policy=churn_policy,
        gray=gray,
        byz=byz,
        byz_config=byz_config,
        allow_root_crash=args.allow_root_crash,
    )
    print(format_table([record.as_dict()], title=f"{args.protocol} on {topology}"))
    return 0 if record.correct else 1


def _cmd_run_engine(args: argparse.Namespace, topology) -> int:
    """``run`` through the execution engine (``--jobs``/``--cache-dir``).

    The work unit replays the serial derivation (same rng consumption
    order), so the record is identical to the in-process path; the only
    behavioral difference is that strict-model violations surface as an
    error *row* (nonzero exit) instead of a raised exception.
    """
    from .exec import WorkUnit

    horizon = max(2, (args.budget or 42) * topology.diameter)
    schedule = (
        {
            "kind": "random",
            "f": args.failures,
            "first_round": 1,
            "last_round": horizon,
            "respect_c": 2,
        }
        if args.failures > 0
        else {"kind": "none"}
    )
    transport, recovery, integrity = _resilience_config(args)
    churn_spec, churn_policy = _churn_config(args, horizon=horizon)
    gray_spec = _gray_config(args, horizon=horizon)
    byz_spec, byz_config = _byz_config(args, horizon=horizon)
    unit = WorkUnit(
        protocol=args.protocol,
        topology=topology,
        seed=args.seed,
        f=args.failures or None,
        b=args.budget,
        t=args.tolerance,
        max_input=args.max_input,
        schedule=schedule,
        crash_root=(
            {"lo": 2, "hi": max(2, horizon // 2)}
            if args.allow_root_crash
            else None
        ),
        inject=args.inject,
        corrupt=args.corrupt,
        strict=True,
        strict_monitors=args.strict_monitors,
        transport=transport,
        recovery=recovery,
        integrity=integrity,
        churn=churn_spec,
        churn_policy=churn_policy,
        gray=gray_spec,
        byz=byz_spec,
        byz_config=byz_config,
        allow_root_crash=args.allow_root_crash,
    )
    engine = _engine_from_args(args)
    try:
        record = engine.run([unit])[0]
    finally:
        engine.emitter.close()
    # The serial `run` table has no seed column (the seed is a flag, not
    # a sweep coordinate); drop the engine's stamp so both paths print
    # the identical table.
    record.seed = None
    print(format_table([record.as_dict()], title=f"{args.protocol} on {topology}"))
    return 0 if record.correct else 1


def cmd_sweep_b(args: argparse.Namespace) -> int:
    validate_fault_flags(args)
    topology = parse_topology(args.topology, args.seed)
    checkpoint = SweepCheckpoint(args.resume) if args.resume else None
    if checkpoint is not None and len(checkpoint):
        print(f"resuming: {len(checkpoint)} run(s) loaded from {args.resume}")
    transport, recovery, integrity = _resilience_config(args)
    # The horizon is per-b; sweep_b pins each coordinate's random-churn
    # spec to its own run length.
    churn_spec, churn_policy = _churn_config(args, horizon=0)
    if isinstance(churn_spec, dict):
        churn_spec.pop("horizon", None)
    gray_spec = _gray_config(args, horizon=0)
    if isinstance(gray_spec, dict):
        gray_spec.pop("horizon", None)
    byz_spec, byz_config = _byz_config(args, horizon=0)
    if isinstance(byz_spec, dict):
        byz_spec.pop("horizon", None)
    engine = _engine_from_args(args)
    try:
        points = sweep_b(
            topology,
            f=args.failures,
            bs=_ints(args.bs),
            seeds=range(args.seeds),
            checkpoint=checkpoint,
            timeout_s=args.timeout,
            retries=args.retries,
            backoff_s=args.backoff,
            capture_dir=args.capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=churn_spec,
            churn_policy=churn_policy,
            gray=gray_spec,
            corrupt=args.corrupt,
            byz=byz_spec,
            byz_config=byz_config,
            allow_root_crash=args.allow_root_crash,
            engine=engine,
        )
    finally:
        engine.emitter.close()
        if checkpoint is not None:
            checkpoint.close()
    print(
        format_table(
            [p.as_dict() for p in points],
            title=f"Algorithm 1 CC vs b on {topology.name} (f={args.failures})",
        )
    )
    return 0


def cmd_sweep_f(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology, args.seed)
    checkpoint = SweepCheckpoint(args.resume) if args.resume else None
    if checkpoint is not None and len(checkpoint):
        print(f"resuming: {len(checkpoint)} run(s) loaded from {args.resume}")
    engine = _engine_from_args(args)
    try:
        points = sweep_f(
            topology,
            fs=_ints(args.fs),
            b=args.budget,
            seeds=range(args.seeds),
            checkpoint=checkpoint,
            timeout_s=args.timeout,
            retries=args.retries,
            capture_dir=args.capture_dir,
            engine=engine,
        )
    finally:
        engine.emitter.close()
        if checkpoint is not None:
            checkpoint.close()
    print(
        format_table(
            [p.as_dict() for p in points],
            title=f"Algorithm 1 CC vs f on {topology.name} (b={args.budget})",
        )
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos harness: protocols under injected message faults + monitors.

    Every seed runs one execution with the requested drop/dup/delay/reorder
    rates (and, optionally, an adaptive crash adversary) with the standard
    invariant monitors attached in record mode.  The verdict per run is
    either *correct* (oracle-satisfying output), *aborted* (no output —
    honest failure), or *SILENT-WRONG* (output outside the oracle interval)
    — the exit status is nonzero iff any run was silent-wrong, which is
    exactly the property the paper's protocols are designed to avoid.

    With ``--recover`` (or ``--retransmit-budget``) the run goes through
    the :mod:`repro.resilience` runtime and the verdicts refine to
    *exact* (full coverage), *partial-certified* (certified subset
    coverage, value inside its bounds), and *PARTIAL-UNCERTIFIED* (a
    best-effort value nothing vouches for).  The exit status is then
    nonzero iff any run was silent-wrong **or** uncertified — the CI
    gate for the self-healing stack.

    With ``--corrupt`` the injected faults include payload corruption;
    a run whose output stands on corrupted bits no integrity layer
    rejected is *CORRUPT-ACCEPTED* and counted with the silent-wrong
    gate (pair with ``--integrity mac`` — and ``--recover`` to turn
    detected-and-dropped frames into retransmissions instead of
    losses).

    With ``--churn`` the run goes through the churn epoch manager and
    two further verdicts gate the exactly-once guarantee:
    *DOUBLE-COUNT* (a contribution booked twice across incarnations)
    and *LOST-CONTRIBUTION* (a contribution with a surviving copy
    missing from the certified coverage).  Either fails the campaign.

    With ``--gray`` the runs limp through stalled nodes and inflated
    links (nothing crashes) and the straggler oracle grades detection
    quality: *FALSE-SUSPECT* (the φ-accrual detector confirmed a node
    that was merely slow) and *UNBOUNDED-STALL* (a degradation past the
    transport's tolerance window that the detector never flagged).
    Either fails the campaign — the gray-resilience CI gate.

    With ``--byz`` the runs go through the witness cross-validation
    runtime against compromised senders (no message faults are injected:
    the lies *are* the faults) and the Byzantine oracle grades the
    defense from its ground-truth taint ledger: *FALSE-CONVICTION* (an
    honest node convicted on witness evidence), *UNDETECTED-EQUIVOCATION*
    (a delivered contradictory claim that never produced an accusation),
    and *INFLUENCE-EXCEEDED* (a certified value farther from the honest
    bracket than the advertised ``b * v_max`` influence bound).  Any of
    the three fails the campaign — the Byzantine CI gate.
    """
    from .exec import WorkUnit

    validate_fault_flags(args)
    topology = parse_topology(args.topology, args.seed)
    transport, recovery, integrity = _resilience_config(args)
    crash_horizon = max(2, (args.budget or 42) * topology.diameter)
    churn_spec, churn_policy = _churn_config(args, horizon=crash_horizon)
    gray_spec = _gray_config(args, horizon=crash_horizon)
    byz_spec, byz_config = _byz_config(args, horizon=crash_horizon)
    # Under --byz the compromised senders are the fault source; the
    # drop-rate default would trip the byz/inject exclusion the witness
    # audits rely on (an explicit --inject already errored above).
    spec = args.inject or (None if byz_spec is not None else "drop=0.05")
    schedule_spec = (
        {
            "kind": "random",
            "f": args.failures,
            "first_round": 1,
            "last_round": max(2, 60 * topology.diameter),
            "respect_c": 2,
        }
        if args.failures
        else {"kind": "none"}
    )
    monitor_spec = {
        "mode": "strict" if args.strict else "record",
        "recovery": recovery is not None or args.allow_root_crash,
    }
    seeds = range(args.seed, args.seed + args.seeds)
    units = [
        WorkUnit(
            protocol=args.protocol,
            topology=topology,
            seed=seed,
            f=args.failures or None,
            b=args.budget,
            t=args.tolerance,
            max_input=args.max_input,
            schedule=schedule_spec,
            crash_root=(
                {"lo": 2, "hi": max(2, crash_horizon // 2)}
                if args.allow_root_crash
                else None
            ),
            inject=spec,
            corrupt=args.corrupt,
            adaptive=args.adaptive,
            monitors=monitor_spec,
            capture_dir=args.capture_dir,
            transport=transport,
            recovery=recovery,
            integrity=integrity,
            churn=churn_spec,
            churn_policy=churn_policy,
            gray=gray_spec,
            byz=byz_spec,
            byz_config=byz_config,
            allow_root_crash=args.allow_root_crash,
            coords={"inject": spec or f"byz:{args.byz}"},
        )
        for seed in seeds
    ]
    engine = _engine_from_args(args)
    try:
        records = engine.run(units)
    finally:
        engine.emitter.close()
    rows = []
    silent_wrong = 0
    uncertified = 0
    exactly_once_broken = 0
    gray_broken = 0
    byz_broken = 0
    for seed, record in zip(seeds, records):
        status = record.extra.get("status")
        if record.failed:
            verdict = f"error:{record.error_kind}"
        elif record.result is None:
            verdict = "aborted"
        elif record.extra.get("unresolved_corruptions", 0) > 0:
            # Corrupted bits reached a handler and no layer rejected
            # them: the value is untrustworthy whatever the oracle says.
            verdict = "CORRUPT-ACCEPTED"
            silent_wrong += 1
        elif record.extra.get("double_counted"):
            # The exactly-once oracle caught a contribution booked twice
            # across incarnations: the certified value overstates reality.
            verdict = "DOUBLE-COUNT"
            exactly_once_broken += 1
        elif record.extra.get("lost_contributions"):
            # A contribution with a surviving copy (durable rejoin or a
            # live snapshot holder) vanished from the certified coverage.
            verdict = "LOST-CONTRIBUTION"
            exactly_once_broken += 1
        elif record.extra.get("false_suspects"):
            # The φ-accrual detector confirmed (and the transport
            # evicted) a node that was merely slow: gray failures must
            # stretch the run, never shrink its coverage.
            verdict = "FALSE-SUSPECT"
            gray_broken += 1
        elif record.extra.get("missed_degradations"):
            # A degradation well past the transport's tolerance window
            # that the detector never even suspected.
            verdict = "UNBOUNDED-STALL"
            gray_broken += 1
        elif record.extra.get("false_convictions"):
            # The witness protocol convicted an honest node: eviction
            # must only ever stand on a cryptographic equivocation
            # proof or a failed delta audit, never on suspicion.
            verdict = "FALSE-CONVICTION"
            byz_broken += 1
        elif record.extra.get("undetected_equivocations"):
            # A compromised sender split the witness panels with
            # contradictory claims and no accusation ever surfaced.
            verdict = "UNDETECTED-EQUIVOCATION"
            byz_broken += 1
        elif record.extra.get("influence_exceeded"):
            # The delivered value sits farther from the honest bracket
            # than the certified b * v_max influence bound admits.
            verdict = "INFLUENCE-EXCEEDED"
            byz_broken += 1
        elif status is not None and not record.extra.get("certified"):
            verdict = "PARTIAL-UNCERTIFIED"
            uncertified += 1
        elif status == "partial":
            verdict = "partial-certified"
        elif record.correct:
            verdict = "exact" if status == "exact" else "correct"
        else:
            verdict = "SILENT-WRONG"
            silent_wrong += 1
        rows.append(
            {
                "seed": seed,
                "verdict": verdict,
                "result": record.result,
                "cc_bits": record.cc_bits,
                "rounds": record.rounds,
                "faults": record.extra.get("injected_faults", 0),
                "violations": len(record.extra.get("violations", ())),
            }
        )
        if args.corrupt:
            rows[-1]["corruptions"] = record.extra.get(
                "injected_corruptions", 0
            )
            rows[-1]["rejected"] = record.extra.get("integrity_rejected", 0)
        if "overhead_bits" in record.extra:
            rows[-1]["overhead"] = record.extra["overhead_bits"]
        if record.extra.get("coverage") is not None and status is not None:
            rows[-1]["coverage"] = (
                f"{record.extra['coverage']}/{topology.n_nodes}"
            )
        if churn_spec is not None:
            rows[-1]["epochs"] = record.extra.get("epochs", 1)
            rows[-1]["rejoins"] = int(
                record.extra.get("rejoins_durable") or 0
            ) + int(record.extra.get("rejoins_amnesiac") or 0)
        if gray_spec is not None:
            rows[-1]["stalled"] = record.extra.get("gray_stalled", 0)
            rows[-1]["suspects"] = record.extra.get("suspects", 0)
        if byz_spec is not None:
            rows[-1]["convicted"] = record.extra.get("convicted", 0)
            rows[-1]["evicted"] = record.extra.get("evicted", 0)
            rows[-1]["bound"] = record.extra.get("influence_bound", 0)
            rows[-1]["epochs"] = record.extra.get("epochs", 1)
        if record.extra.get("bundle"):
            rows[-1]["bundle"] = record.extra["bundle"]
    print(
        format_table(
            rows,
            title=(
                f"chaos: {args.protocol} on {topology.name} "
                f"[{spec or f'byz:{args.byz}'}]"
                + (f" + {args.adaptive}" if args.adaptive else "")
            ),
        )
    )
    verdicts = [r["verdict"] for r in rows]
    print(
        f"{verdicts.count('correct') + verdicts.count('exact')} correct, "
        f"{verdicts.count('partial-certified')} partial-certified, "
        f"{verdicts.count('aborted')} aborted, "
        f"{sum(1 for v in verdicts if v.startswith('error'))} errored, "
        f"{uncertified} uncertified, {silent_wrong} silent-wrong "
        f"(incl. {verdicts.count('CORRUPT-ACCEPTED')} corrupt-accepted)"
        + (
            f", {verdicts.count('DOUBLE-COUNT')} double-count, "
            f"{verdicts.count('LOST-CONTRIBUTION')} lost-contribution"
            if churn_spec is not None
            else ""
        )
        + (
            f", {verdicts.count('FALSE-SUSPECT')} false-suspect, "
            f"{verdicts.count('UNBOUNDED-STALL')} unbounded-stall"
            if gray_spec is not None
            else ""
        )
        + (
            f", {verdicts.count('FALSE-CONVICTION')} false-conviction, "
            f"{verdicts.count('UNDETECTED-EQUIVOCATION')} "
            "undetected-equivocation, "
            f"{verdicts.count('INFLUENCE-EXCEEDED')} influence-exceeded"
            if byz_spec is not None
            else ""
        )
    )
    return (
        1
        if silent_wrong
        or uncertified
        or exactly_once_broken
        or gray_broken
        or byz_broken
        else 0
    )


def cmd_obs(args: argparse.Namespace) -> int:
    """Inspect observability artifacts written by ``--trace-out`` /
    ``--metrics-out``.

    ``summarize`` aggregates one trace (span counts + round-time
    totals per name); ``diff`` compares two summaries sorted by
    absolute delta; ``top`` lists the k slowest individual spans;
    ``validate`` checks a Chrome trace for well-formedness and
    balanced B/E tracks (``--prom FILE`` additionally lints a
    Prometheus textfile) with nonzero exit on any problem — the CI
    smoke gate.
    """
    import json as _json

    from .obs import export as obs_export

    def _fmt_us(us: float) -> str:
        return f"{us / 1000.0:.0f} rounds"

    if args.action == "summarize":
        if len(args.paths) != 1:
            raise SystemExit("obs summarize takes exactly one trace file")
        summary = obs_export.summarize_trace(
            obs_export.load_trace(args.paths[0])
        )
        rows = [
            {
                "span": name,
                "count": cell["count"],
                "total": _fmt_us(cell["total_us"]),
                "max": _fmt_us(cell["max_us"]),
            }
            for name, cell in summary["by_name"].items()
        ]
        if rows:
            print(format_table(rows, title=f"spans in {args.paths[0]}"))
        print(
            f"{summary['spans']} span(s), {summary['instants']} "
            f"instant event(s)"
        )
        for name, count in summary["instants_by_name"].items():
            print(f"  {name}: {count}")
        return 0

    if args.action == "diff":
        if len(args.paths) != 2:
            raise SystemExit("obs diff takes exactly two trace files")
        a = obs_export.summarize_trace(obs_export.load_trace(args.paths[0]))
        b = obs_export.summarize_trace(obs_export.load_trace(args.paths[1]))
        rows = [
            {
                "span": name,
                "a": _fmt_us(ta),
                "b": _fmt_us(tb),
                "delta": _fmt_us(tb - ta),
            }
            for name, ta, tb in obs_export.diff_summaries(a, b)
        ]
        if rows:
            print(
                format_table(
                    rows, title=f"{args.paths[0]} vs {args.paths[1]}"
                )
            )
        else:
            print("no spans in either trace")
        return 0

    if args.action == "top":
        if len(args.paths) != 1:
            raise SystemExit("obs top takes exactly one trace file")
        spans = obs_export.top_spans(
            obs_export.load_trace(args.paths[0]), k=args.k
        )
        rows = [
            {
                "span": s["name"],
                "cat": s["cat"],
                "pid": s["pid"],
                "tid": s["tid"],
                "start": _fmt_us(s["ts"]),
                "duration": _fmt_us(s["dur"]),
            }
            for s in spans
        ]
        if rows:
            print(
                format_table(
                    rows, title=f"top {len(rows)} spans in {args.paths[0]}"
                )
            )
        else:
            print("no spans in trace")
        return 0

    # validate
    if len(args.paths) > 1:
        raise SystemExit("obs validate takes at most one trace file")
    problems: List[str] = []
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            doc = _json.loads(text)
        except _json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "type" not in doc:
            errors = obs_export.validate_chrome_trace(doc)
        else:
            # JSONL traces are validated through the shared pairing
            # path: resynthesized B/E events must balance too.
            errors = obs_export.validate_chrome_trace(
                {"traceEvents": obs_export.load_trace(path)}
            )
        problems.extend(f"{path}: {e}" for e in errors)
        print(f"{path}: {'OK' if not errors else f'{len(errors)} problem(s)'}")
    if args.prom:
        with open(args.prom, "r", encoding="utf-8") as fh:
            errors = obs_export.lint_prometheus(fh.read())
        problems.extend(f"{args.prom}: {e}" for e in errors)
        print(
            f"{args.prom}: "
            f"{'OK' if not errors else f'{len(errors)} problem(s)'}"
        )
    for problem in problems:
        print(f"  {problem}")
    return 1 if problems else 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a repro bundle; nonzero exit iff the replay diverges.

    Strict replay (the default) re-applies every recorded fault decision
    and checks per-round digests plus the final outcome, raising
    ``ReplayDivergence`` with the first divergent round.  ``--best-effort``
    replays whatever still matches and reports outcome mismatches instead
    of failing on them.
    """
    from .sim.recorder import ExecutionRecord
    from .sim.replay import ReplayDivergence, replay_bundle

    bundle = ExecutionRecord.load(args.bundle)
    print(
        f"bundle: {bundle.protocol} on {bundle.topology.get('name')} "
        f"(seed {bundle.seed}, {bundle.n_decisions} recorded event(s), "
        f"monitors={bundle.monitor_mode or 'none'})"
    )
    try:
        outcome = replay_bundle(bundle, strict=not args.best_effort)
    except ReplayDivergence as exc:
        print(f"DIVERGED: {exc}")
        return 1
    row = outcome.record.as_dict()
    row.pop("violations", None)
    print(format_table([row], title=f"replay of {args.bundle}"))
    if outcome.reproduced:
        print("outcome reproduced exactly")
        return 0
    print("outcome mismatches:")
    for line in outcome.mismatches:
        print(f"  {line}")
    return 1


def cmd_shrink(args: argparse.Namespace) -> int:
    """ddmin-minimize a failing bundle to a 1-minimal fault schedule."""
    from .adversary.shrink import shrink_bundle
    from .sim.recorder import ExecutionRecord

    bundle = ExecutionRecord.load(args.bundle)
    try:
        result = shrink_bundle(
            bundle,
            max_evals=args.max_evals,
            max_seconds=args.max_seconds,
            log=print,
        )
    except ValueError as exc:
        print(f"cannot shrink: {exc}")
        return 1
    print(
        format_table(
            [
                {
                    "events before": result.original_size,
                    "events after": result.shrunk_size,
                    "reduction": f"{result.reduction:.0%}",
                    "replays": result.evaluations,
                    "wall (s)": round(result.wall_seconds, 1),
                    "1-minimal": result.complete,
                }
            ],
            title=f"shrink of {args.bundle}",
        )
    )
    out = args.out or (args.bundle.rsplit(".json", 1)[0] + ".min.json")
    result.minimal.save(out)
    print(f"minimized bundle written to {out}")
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    data = figure1_data(args.n, args.failures, _ints(args.bs))
    series = {
        name: [round(v, 2) for v in values]
        for name, values in data.curves.items()
        if name in ("upper_bound_new", "lower_bound_new", "lower_bound_old",
                    "bruteforce", "folklore")
    }
    print(
        format_series(
            data.bs,
            series,
            x_label="b",
            title=f"Figure 1 curves: N={args.n}, f={args.failures}",
        )
    )
    if args.plot:
        print()
        print(
            plot_series(
                data.bs,
                series,
                title="Figure 1 (log-scale CC vs b)",
            )
        )
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology, args.seed)
    rng = random.Random(args.seed)
    inputs = make_inputs(topology, rng, max_input=args.max_input)
    outcome = distributed_select(
        topology, inputs, k=args.k, f=args.failures, b=args.budget, rng=rng
    )
    expected = sorted(inputs.values())[args.k - 1]
    print(
        format_table(
            [
                {
                    "k": args.k,
                    "selected value": outcome.value,
                    "expected (failure-free)": expected,
                    "COUNT probes": outcome.probe_count,
                    "total rounds": outcome.total_rounds,
                    "CC (bits/node)": outcome.cc_bits,
                }
            ],
            title=f"distributed selection on {topology.name}",
        )
    )
    return 0


def cmd_worst_case(args: argparse.Namespace) -> int:
    from .adversary.search import EvaluatorSpec, search_worst_adversary

    topology = parse_topology(args.topology, args.seed)
    rng = random.Random(args.seed)
    inputs = make_inputs(topology, rng, max_input=args.max_input)
    evaluator = EvaluatorSpec(
        topology, inputs, f=args.failures, b=args.budget
    )
    result = search_worst_adversary(
        evaluator,
        topology,
        f=args.failures,
        horizon=args.budget * topology.diameter,
        rng=rng,
        restarts=args.restarts,
        steps_per_restart=args.steps,
        jobs=args.jobs,
    )
    print(
        format_table(
            [
                {
                    "worst CC (bits/node)": result.cc_bits,
                    "rounds": result.rounds,
                    "crashes": len(result.schedule),
                    "protocol runs": result.trials,
                    "incorrect results": result.incorrect_runs,
                }
            ],
            title=f"worst-case search on {topology.name} (f={args.failures}, b={args.budget})",
        )
    )
    if result.schedule.crash_rounds:
        print("schedule:", sorted(result.schedule.crash_rounds.items()))
    return 0 if result.incorrect_runs == 0 else 1


def cmd_monitor(args: argparse.Namespace) -> int:
    from .adversary import random_failures
    from .extensions.monitoring import drifting_inputs, run_monitoring

    topology = parse_topology(args.topology, args.seed)
    rng = random.Random(args.seed)
    base = make_inputs(topology, rng, max_input=args.max_input)
    horizon = args.epochs * args.budget * topology.diameter
    schedule = (
        random_failures(topology, args.failures, rng, last_round=horizon)
        if args.failures
        else no_failures()
    )
    outcome = run_monitoring(
        topology,
        drifting_inputs(base, rng),
        epochs=args.epochs,
        f=max(1, args.failures),
        b=args.budget,
        schedule=schedule,
        rng=rng,
    )
    rows = [
        {
            "epoch": e.epoch,
            "result": e.result,
            "correct": e.correct,
            "survivors": e.survivors,
            "CC": e.cc_bits,
        }
        for e in outcome.epochs
    ]
    print(format_table(rows, title=f"monitoring {topology.name}"))
    return 0 if outcome.all_correct else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    text = generate_report(side=args.side, f=args.failures, seeds=args.seeds)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    from .analysis.regression import capture_baseline, compare_to_baseline

    if args.action == "capture":
        metrics = capture_baseline(args.path)
        print(
            format_table(
                [{"metric": k, "value": v} for k, v in sorted(metrics.items())],
                title=f"baseline captured -> {args.path}",
            )
        )
        return 0
    drifts = compare_to_baseline(args.path, tolerance=args.tolerance)
    if not drifts:
        print(f"no drift beyond {args.tolerance:.0%} vs {args.path}")
        return 0
    print(
        format_table(
            [
                {
                    "metric": d.metric,
                    "baseline": d.baseline,
                    "measured": d.measured,
                    "ratio": round(d.ratio, 3),
                }
                for d in drifts
            ],
            title=f"DRIFT beyond {args.tolerance:.0%}",
        )
    )
    return 1


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect / maintain a content-addressed result cache directory."""
    from .exec import ResultCache
    from .exec.cache import parse_age

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        by_protocol = stats.pop("by_protocol", {})
        rows = [stats]
        print(format_table(rows, title=f"result cache at {args.cache_dir}"))
        if by_protocol:
            print(
                format_table(
                    [
                        {"protocol": name, "entries": count}
                        for name, count in by_protocol.items()
                    ],
                    title="entries by protocol",
                )
            )
        return 0
    if args.action == "gc":
        if not args.older_than:
            raise SystemExit("cache gc requires --older-than (e.g. 7d, 12h, 90s)")
        try:
            age = parse_age(args.older_than)
        except ValueError as exc:
            raise SystemExit(str(exc))
        removed = cache.gc(age)
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    removed = cache.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology, args.seed)
    print(
        format_table(
            [
                {
                    "name": topology.name,
                    "N": topology.n_nodes,
                    "edges": topology.n_edges,
                    "diameter": topology.diameter,
                    "root": topology.root,
                }
            ],
            title="topology",
        )
    )
    if args.out:
        graph_io.save(topology, args.out)
        print(f"saved to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-agg",
        description="Fault-tolerant aggregation (PODC'14 reproduction) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--topology", default="grid:6x6", help="kind[:args] spec")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-input", type=int, default=None, dest="max_input")

    def parallel(p, cache: bool = True):
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes (1 = serial in-process; results are "
            "bit-identical for every value)",
        )
        if cache:
            p.add_argument(
                "--cache-dir",
                default=None,
                dest="cache_dir",
                help="content-addressed result cache directory "
                "(hits skip recomputation)",
            )
            p.add_argument(
                "--force",
                action="store_true",
                help="recompute cached results (fresh runs refresh the cache)",
            )
            p.add_argument(
                "--progress-log",
                default=None,
                dest="progress_log",
                help="append structured JSONL progress events here",
            )

    def resilience(p):
        p.add_argument(
            "--recover",
            action="store_true",
            help="self-healing runtime: reliable transport, root failover, "
            "certified partial results (algorithm1 / unknown_f)",
        )
        p.add_argument(
            "--retransmit-budget",
            type=int,
            default=None,
            dest="retransmit_budget",
            help="reliable-transport retransmissions per frame "
            "(alone: transport only; with --recover: sets its budget)",
        )
        p.add_argument(
            "--allow-root-crash",
            action="store_true",
            dest="allow_root_crash",
            help="opt out of the Section 2 root protection and schedule a "
            "seeded root crash (pair with --recover to survive it)",
        )
        p.add_argument(
            "--corrupt",
            default=None,
            help="message-corruption spec, e.g. bitflip:0.02,stale:0.01 "
            "(modes: bitflip, truncate, stale)",
        )
        p.add_argument(
            "--integrity",
            default="off",
            choices=["off", "checksum", "mac"],
            help="authenticated wire frames: detect, drop, and quarantine "
            "corrupted deliveries (checksum: CRC-32; mac: seeded-key "
            "HMAC-SHA256); framing cost is booked as overhead, never "
            "protocol CC",
        )
        p.add_argument(
            "--churn",
            default=None,
            help="crash-recovery churn (algorithm1 / unknown_f, exclusive "
            "with --recover): an explicit ChurnSchedule spec "
            "('5:crash@r3,5:revive@r7:amnesiac,flap:1-2@r2-r5') or "
            "'rate:<float>' for seeded random crash/revive cycles; runs "
            "go through the epoch manager with exactly-once booking",
        )
        p.add_argument(
            "--amnesiac",
            type=float,
            default=None,
            help="with --churn rate:<x>: fraction of rejoins that lose "
            "state and need a snapshot handshake (0 = all durable; "
            "default 0.25)",
        )
        p.add_argument(
            "--flap-rate",
            type=float,
            default=0.0,
            dest="flap_rate",
            help="with --churn rate:<x>: per-edge probability of one "
            "link-flap window",
        )
        p.add_argument(
            "--max-epochs",
            type=int,
            default=None,
            dest="max_epochs",
            help="with --churn: re-aggregation epoch budget "
            "(default 4; exhaustion degrades to a certified partial)",
        )
        p.add_argument(
            "--gray",
            default=None,
            help="gray-failure schedule: an explicit spec "
            "('3:stall@r5-r12:x2:ramp,link:1-2@r4-r9:x3') or "
            "'rate:<float>' for seeded random degradations; nodes limp "
            "and links inflate but nothing crashes",
        )
        p.add_argument(
            "--rto",
            default="fixed",
            choices=["fixed", "adaptive"],
            help="retransmission timing: 'fixed' keeps the historical "
            "NACK schedule; 'adaptive' times NACKs per link from an EWMA "
            "RTT estimator and closes clean windows early (needs "
            "--recover or --retransmit-budget)",
        )
        p.add_argument(
            "--hedge",
            action="store_true",
            help="hedged retransmission: a neighbour holding a copy of a "
            "twice-NACKed frame relays it on the alternative path, "
            "booked entirely as overhead (needs --recover or "
            "--retransmit-budget)",
        )
        p.add_argument(
            "--byz",
            default=None,
            help="Byzantine compromise schedule (algorithm1 / unknown_f): "
            "an explicit spec '5:equivocate,7:inflate=4@r3,9:omit' "
            "(modes: equivocate, inflate, deflate, replay, omit) or "
            "'rate:<float>' for seeded random compromise; runs go "
            "through witness cross-validation with accusation/eviction "
            "and influence-bounded certification (echo traffic is "
            "booked as overhead, never protocol CC)",
        )
        p.add_argument(
            "--witnesses",
            type=int,
            default=None,
            help="with --byz: witnesses echoing each claim for "
            "cross-validation (default 2)",
        )
        p.add_argument(
            "--evict-policy",
            default=None,
            choices=["evict", "flag"],
            dest="evict_policy",
            help="with --byz: conviction response — 'evict' discards the "
            "epoch and re-aggregates without the convict (default); "
            "'flag' keeps the value but leaves the convict's influence "
            "unbounded (uncertified)",
        )

    def obs(p):
        p.add_argument(
            "--trace-out",
            default=None,
            dest="trace_out",
            help="write a span trace here (.jsonl = flat deterministic "
            "lines; anything else = Chrome trace_event JSON for "
            "Perfetto / chrome://tracing)",
        )
        p.add_argument(
            "--metrics-out",
            default=None,
            dest="metrics_out",
            help="write a Prometheus textfile metrics snapshot here",
        )
        p.add_argument(
            "--trace-detail",
            default=None,
            dest="trace_detail",
            choices=["off", "phases", "messages"],
            help="span granularity: off = metrics only, phases = "
            "protocol phase/epoch/transport spans (default when an "
            "output is requested), messages = + one instant event per "
            "broadcast",
        )

    p_run = sub.add_parser("run", help="run one protocol execution")
    common(p_run)
    p_run.add_argument(
        "--protocol",
        default="algorithm1",
        choices=["algorithm1", "bruteforce", "folklore", "tag", "unknown_f", "agg_veri"],
    )
    p_run.add_argument("-f", "--failures", type=int, default=0)
    p_run.add_argument("-b", "--budget", type=int, default=None)
    p_run.add_argument("-t", "--tolerance", type=int, default=None)
    p_run.add_argument(
        "--inject",
        default=None,
        help="message-fault spec, e.g. drop=0.1,dup=0.05,delay=0.1",
    )
    p_run.add_argument(
        "--strict-monitors",
        action="store_true",
        dest="strict_monitors",
        help="attach strict invariant monitors (raise on violation)",
    )
    resilience(p_run)
    parallel(p_run)
    obs(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep-b", help="Algorithm 1 CC vs time budget")
    common(p_sweep)
    p_sweep.add_argument("-f", "--failures", type=int, required=True)
    p_sweep.add_argument("--bs", default="42,84,168,336")
    p_sweep.add_argument("--seeds", type=int, default=3)
    p_sweep.add_argument(
        "--resume",
        default=None,
        help="JSONL checkpoint path: completed runs are loaded, fresh "
        "runs appended (kill + rerun resumes where it stopped)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, help="per-run wall-clock limit (s)"
    )
    p_sweep.add_argument(
        "--retries", type=int, default=0, help="retries per failed run"
    )
    p_sweep.add_argument(
        "--capture-dir",
        default=None,
        dest="capture_dir",
        help="write a repro bundle here for every failing run",
    )
    p_sweep.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base retry backoff in seconds (doubles per attempt, "
        "seeded jitter)",
    )
    resilience(p_sweep)
    parallel(p_sweep)
    obs(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep_b)

    p_sweep_f = sub.add_parser(
        "sweep-f", help="Algorithm 1 CC vs failure budget"
    )
    common(p_sweep_f)
    p_sweep_f.add_argument("--fs", default="2,4,8,16", help="failure budgets")
    p_sweep_f.add_argument("-b", "--budget", type=int, default=60)
    p_sweep_f.add_argument("--seeds", type=int, default=3)
    p_sweep_f.add_argument(
        "--resume",
        default=None,
        help="JSONL checkpoint path (same semantics as sweep-b)",
    )
    p_sweep_f.add_argument(
        "--timeout", type=float, default=None, help="per-run wall-clock limit (s)"
    )
    p_sweep_f.add_argument(
        "--retries", type=int, default=0, help="retries per failed run"
    )
    p_sweep_f.add_argument(
        "--capture-dir",
        default=None,
        dest="capture_dir",
        help="write a repro bundle here for every failing run",
    )
    parallel(p_sweep_f)
    obs(p_sweep_f)
    p_sweep_f.set_defaults(func=cmd_sweep_f)

    p_chaos = sub.add_parser(
        "chaos", help="protocols under injected message faults + monitors"
    )
    common(p_chaos)
    p_chaos.add_argument(
        "--protocol",
        default="unknown_f",
        choices=["algorithm1", "bruteforce", "folklore", "tag", "unknown_f", "agg_veri"],
    )
    p_chaos.add_argument("-f", "--failures", type=int, default=0)
    p_chaos.add_argument("-b", "--budget", type=int, default=None)
    p_chaos.add_argument("-t", "--tolerance", type=int, default=None)
    p_chaos.add_argument(
        "--inject",
        default=None,
        help="fault spec (default drop=0.05), e.g. drop=0.1,dup=0.05,reorder=0.2",
    )
    p_chaos.add_argument(
        "--adaptive",
        default=None,
        help="adaptive crash adversary: top-talker[:period], "
        "trigger:<kind>, root-isolation",
    )
    p_chaos.add_argument("--seeds", type=int, default=5)
    p_chaos.add_argument(
        "--strict",
        action="store_true",
        help="strict monitors: abort the run at the first invariant break",
    )
    p_chaos.add_argument(
        "--capture-dir",
        default=None,
        dest="capture_dir",
        help="write a repro bundle here for every failing run "
        "(replay with `repro-agg replay`, minimize with `repro-agg shrink`)",
    )
    resilience(p_chaos)
    parallel(p_chaos)
    obs(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_obs = sub.add_parser(
        "obs", help="summarize / diff / validate trace + metrics artifacts"
    )
    p_obs.add_argument(
        "action", choices=["summarize", "diff", "top", "validate"]
    )
    p_obs.add_argument(
        "paths",
        nargs="*",
        help="trace file(s): Chrome JSON or JSONL from --trace-out",
    )
    p_obs.add_argument(
        "-k", type=int, default=10, help="span count for `obs top`"
    )
    p_obs.add_argument(
        "--prom",
        default=None,
        help="with validate: lint this Prometheus textfile too",
    )
    p_obs.set_defaults(func=cmd_obs)

    p_replay = sub.add_parser(
        "replay", help="re-execute a repro bundle, checking for divergence"
    )
    p_replay.add_argument("bundle", help="path to a repro bundle .json")
    p_replay.add_argument(
        "--best-effort",
        action="store_true",
        dest="best_effort",
        help="re-apply what matches instead of failing on divergence",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_shrink = sub.add_parser(
        "shrink", help="ddmin-minimize a failing bundle (1-minimal schedule)"
    )
    p_shrink.add_argument("bundle", help="path to a repro bundle .json")
    p_shrink.add_argument(
        "--out", default=None, help="minimized bundle path (default *.min.json)"
    )
    p_shrink.add_argument("--max-evals", type=int, default=500, dest="max_evals")
    p_shrink.add_argument(
        "--max-seconds", type=float, default=120.0, dest="max_seconds"
    )
    p_shrink.set_defaults(func=cmd_shrink)

    p_fig = sub.add_parser("figure1", help="print the Figure 1 bound curves")
    p_fig.add_argument("-n", type=int, default=1024)
    p_fig.add_argument("-f", "--failures", type=int, default=128)
    p_fig.add_argument("--bs", default="42,84,168,336,672")
    p_fig.add_argument("--plot", action="store_true", help="ASCII chart too")
    p_fig.set_defaults(func=cmd_figure1)

    p_sel = sub.add_parser("select", help="k-th smallest via COUNT probes")
    common(p_sel)
    p_sel.add_argument("-k", type=int, required=True)
    p_sel.add_argument("-f", "--failures", type=int, default=1)
    p_sel.add_argument("-b", "--budget", type=int, default=45)
    p_sel.set_defaults(func=cmd_select)

    p_worst = sub.add_parser(
        "worst-case",
        aliases=["search"],
        help="hill-climb for a costly failure schedule",
    )
    common(p_worst)
    p_worst.add_argument("-f", "--failures", type=int, required=True)
    p_worst.add_argument("-b", "--budget", type=int, default=60)
    p_worst.add_argument("--restarts", type=int, default=3)
    p_worst.add_argument("--steps", type=int, default=5)
    parallel(p_worst, cache=False)
    p_worst.set_defaults(func=cmd_worst_case)

    p_cache = sub.add_parser(
        "cache", help="inspect / maintain a result cache directory"
    )
    p_cache.add_argument("action", choices=["stats", "gc", "clear"])
    p_cache.add_argument(
        "--cache-dir", default=".repro-cache", dest="cache_dir"
    )
    p_cache.add_argument(
        "--older-than",
        default=None,
        dest="older_than",
        help="gc cutoff age: 3600, 90s, 15m, 12h, or 7d",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_mon = sub.add_parser("monitor", help="periodic aggregation epochs")
    common(p_mon)
    p_mon.add_argument("--epochs", type=int, default=4)
    p_mon.add_argument("-f", "--failures", type=int, default=0)
    p_mon.add_argument("-b", "--budget", type=int, default=45)
    p_mon.set_defaults(func=cmd_monitor)

    p_rep = sub.add_parser("report", help="run the compact experiment suite")
    p_rep.add_argument("--side", type=int, default=5, help="grid side length")
    p_rep.add_argument("-f", "--failures", type=int, default=6)
    p_rep.add_argument("--seeds", type=int, default=3)
    p_rep.add_argument("--out", default=None, help="write Markdown here")
    p_rep.set_defaults(func=cmd_report)

    p_base = sub.add_parser(
        "baseline", help="capture/check performance-regression baselines"
    )
    p_base.add_argument("action", choices=["capture", "check"])
    p_base.add_argument("--path", default="repro-baseline.json")
    p_base.add_argument("--tolerance", type=float, default=0.05)
    p_base.set_defaults(func=cmd_baseline)

    p_topo = sub.add_parser("topology", help="describe / export a topology")
    common(p_topo)
    p_topo.add_argument("--out", default=None, help="write .json/.dot/edge list")
    p_topo.set_defaults(func=cmd_topology)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cap = _obs_from_args(args)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Sweeps flush completed rows to --resume checkpoints before the
        # interrupt propagates here; rerunning the same command resumes.
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        # Partial traces from interrupted/failed runs still flush:
        # close_all() balances whatever spans were open.
        _obs_finish(cap, args)


if __name__ == "__main__":
    sys.exit(main())
