"""repro — reproduction of "Near-Optimal Communication-Time Tradeoff in
Fault-Tolerant Computation of Aggregate Functions" (Zhao, Yu, Chen, PODC'14).

Public API highlights:

* :func:`repro.core.run_algorithm1` — the paper's near-optimal SUM/CAAF
  protocol under a TC budget of ``b`` flooding rounds.
* :func:`repro.core.run_agg` / :func:`repro.core.run_agg_veri_pair` — the
  AGG and VERI building blocks.
* :func:`repro.baselines.run_bruteforce` / :func:`repro.baselines.run_folklore`
  — the two pre-existing fault-tolerant SUM protocols.
* :mod:`repro.lowerbound` — the Section 7 machinery (UNIONSIZECP,
  EQUALITYCP, Sperner capacity, closed-form bound curves).
* :mod:`repro.graphs`, :mod:`repro.adversary`, :mod:`repro.sim` — the
  substrate: topologies, oblivious failure adversaries, and the synchronous
  local-broadcast simulator.
"""

from . import adversary, analysis, baselines, core, extensions, graphs, lowerbound, sim
from .adversary import FailureSchedule
from .extensions import distributed_average, distributed_median, distributed_select
from .core import (
    CAAF,
    COUNT,
    MAX,
    SUM,
    is_correct_result,
    run_agg,
    run_agg_veri_pair,
    run_algorithm1,
    run_unknown_f,
)
from .baselines import run_bruteforce, run_folklore, run_plain_tag
from .graphs import Topology

__version__ = "1.0.0"

__all__ = [
    "CAAF",
    "COUNT",
    "FailureSchedule",
    "MAX",
    "SUM",
    "Topology",
    "adversary",
    "analysis",
    "baselines",
    "core",
    "distributed_average",
    "distributed_median",
    "distributed_select",
    "extensions",
    "graphs",
    "lowerbound",
    "is_correct_result",
    "run_agg",
    "run_agg_veri_pair",
    "run_algorithm1",
    "run_bruteforce",
    "run_folklore",
    "run_plain_tag",
    "run_unknown_f",
    "sim",
    "__version__",
]
