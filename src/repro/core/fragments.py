"""Ground-truth oracle for AGG's fragment / representative-set concepts.

Section 4.1 of the paper defines, with respect to an aggregation tree and a
failure pattern: *critical failures* (a node dying between its ack and its
aggregation slot), *visible* critical failures (whose parent's flooded
claim reaches the root), *fragments* (the tree split at visible critical
failures), *local ancestors/descendants*, *representatives*, and
*representative sets* — the object whose aggregate is provably correct.

AGG computes all of this implicitly with 2t-ancestor lists and witnesses.
This module computes it *explicitly* from global knowledge (the predicted
tree plus the failure schedule), giving tests an independent oracle to
check AGG's distributed selection against, and giving users a vocabulary
for inspecting executions.

Validity: the oracle assumes tree construction finished before the first
crash (crash round > construction span), which all chain/blocker adversary
constructors satisfy; it classifies each failed node as a critical failure
by comparing its crash round against its aggregation slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..adversary.adversaries import predicted_tree
from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from .params import ProtocolParams


@dataclass
class FragmentModel:
    """Global view of one AGG execution's tree/fragment structure."""

    topology: Topology
    parent: Dict[int, int]
    children: Dict[int, List[int]]
    levels: Dict[int, int]
    #: Nodes that critically failed (died after acking, before their slot).
    critical_failures: Set[int]
    #: Critical failures whose parent survived long enough to flood the
    #: claim and whose claim can reach the root (parent alive at the slot).
    visible_critical_failures: Set[int]
    #: node -> fragment local root.
    fragment_of: Dict[int, int]

    def fragment_members(self, local_root: int) -> Set[int]:
        """All nodes in the fragment rooted at ``local_root``."""
        return {u for u, r in self.fragment_of.items() if r == local_root}

    def local_ancestors(self, node: int) -> List[int]:
        """The node's ancestors within its fragment (nearest first)."""
        out = []
        frag = self.fragment_of[node]
        walker = node
        while walker != frag:
            walker = self.parent[walker]
            out.append(walker)
        return out

    def local_descendants(self, node: int) -> Set[int]:
        """The node's descendants within its fragment."""
        frag = self.fragment_of[node]
        out = set()
        stack = [node]
        while stack:
            u = stack.pop()
            for child in self.children[u]:
                if self.fragment_of.get(child) == frag:
                    out.add(child)
                    stack.append(child)
        return out

    def representatives_of(self, node: int, invisible: Set[int]) -> List[int]:
        """Nodes whose partial sum *represents* ``node`` (Section 4.1):
        itself plus each local ancestor whose downward tree path to ``node``
        crosses no invisible critical failure."""
        reps = [node]
        path: List[int] = []
        for ancestor in self.local_ancestors(node):
            if any(mid in invisible for mid in path):
                break
            reps.append(ancestor)
            path.append(ancestor)
        # Trim: a representative is disqualified if a strictly-between node
        # is an invisible critical failure; ``path`` tracking above already
        # enforces that by breaking at the first invisible hop.
        return reps


def build_fragment_model(
    topology: Topology,
    schedule: FailureSchedule,
    params: ProtocolParams,
    agg_start_round: int = 1,
) -> FragmentModel:
    """Compute the oracle fragment structure for one AGG execution."""
    parent, children = predicted_tree(topology)
    levels = topology.levels
    cd = params.cd

    construction_end = agg_start_round + 2 * cd
    aggregation_start = construction_end + 1

    def slot_round(node: int) -> int:
        """Absolute round of the node's aggregation action."""
        return aggregation_start + (cd - levels[node] + 1) - 1

    critical: Set[int] = set()
    for node in schedule.failed_nodes:
        if node == topology.root or node not in levels:
            continue
        crash = schedule.crash_round(node)
        if crash <= construction_end:
            # Died during construction: treat as critical iff it had time
            # to ack (activation round 2*level within the phase).
            activation = agg_start_round + 2 * levels[node] - 1
            if crash > activation:
                critical.add(node)
        elif crash <= slot_round(node):
            critical.add(node)

    visible: Set[int] = set()
    for node in critical:
        p = parent[node]
        if p == -1:
            continue
        # The parent flags the missing child at its own slot; the claim is
        # visible if the parent is alive then (flood initiation suffices:
        # the root side is connected through alive nodes by assumption).
        if p == topology.root or schedule.crash_round(p) > slot_round(p):
            visible.add(node)

    fragment_of: Dict[int, int] = {}

    def assign(node: int, frag: int) -> None:
        fragment_of[node] = frag
        for child in children[node]:
            if child in visible:
                assign(child, child)  # new fragment under the cut edge
            else:
                assign(child, frag)

    assign(topology.root, topology.root)

    return FragmentModel(
        topology=topology,
        parent=parent,
        children=children,
        levels=levels,
        critical_failures=critical,
        visible_critical_failures=visible,
        fragment_of=fragment_of,
    )


def psum_members(
    model: FragmentModel,
    schedule: FailureSchedule,
    source: int,
    params: ProtocolParams,
    agg_start_round: int = 1,
) -> Set[int]:
    """Which nodes' inputs ``source``'s partial sum includes.

    A descendant ``u`` contributes iff every node on the tree path from
    ``u`` up to (and excluding) ``source`` — and ``u`` itself — was alive at
    its own aggregation slot, so the chain of upstream messages went
    through.  ``source`` always includes its own input.
    """
    cd = params.cd
    aggregation_start = agg_start_round + 2 * cd + 1

    def alive_at_slot(node: int) -> bool:
        slot = aggregation_start + (cd - model.levels[node] + 1) - 1
        return schedule.crash_round(node) > slot

    members = {source}

    def walk(node: int) -> None:
        for child in model.children[node]:
            if alive_at_slot(child):
                members.add(child)
                walk(child)

    walk(source)
    return members


def oracle_representative_set_is_valid(
    model: FragmentModel,
    selected_sources: Set[int],
    psum_members: Dict[int, Set[int]],
    alive_at_end: Set[int],
) -> Tuple[bool, str]:
    """Check the representative-set property of a selected psum collection.

    ``psum_members[source]`` is the set of nodes whose inputs ``source``'s
    partial sum includes.  The definition (Section 4.1): every node alive at
    the end is covered exactly once; no node is covered more than once.

    Returns ``(ok, reason)``.
    """
    coverage: Dict[int, int] = {}
    for source in selected_sources:
        for member in psum_members[source]:
            coverage[member] = coverage.get(member, 0) + 1
    for node, count in coverage.items():
        if count > 1:
            return False, f"node {node} counted {count} times"
    for node in alive_at_end:
        if coverage.get(node, 0) != 1:
            return False, f"alive node {node} covered {coverage.get(node, 0)} times"
    return True, "ok"
