"""The VERI protocol (Algorithm 3 of the paper).

VERI follows an AGG execution (both parameterized by the same ``t``) and
decides whether AGG's output can be trusted.  Rather than counting edge
failures (hard to do fault-tolerantly), it detects *long failure chains*
(LFCs): a chain of ``t`` failed tree nodes, each the parent of the next,
whose tail still has a live local descendant.  Theorem 5 shows AGG only errs
when an LFC exists, so VERI may err one-sidedly when there is no LFC but
more than ``t`` failures (Table 2):

* at most ``t`` edge failures  -> VERI outputs **true**;
* an LFC exists                -> VERI outputs **false**;
* otherwise                    -> either answer is fine (AGG was correct or
  aborted anyway).

Three fixed phases (``5cd + 3`` rounds, at most ``8c`` flooding rounds):

1. **Failed-parent detection** — the root floods one bit; a node at level
   ``l`` that hears nothing from its parent in phase round ``l + 1`` floods
   a ``failed_parent`` claim carrying ``x = max_level - level + 1`` (how
   deep its subtree reaches — a proxy for how many witnesses the failed
   parent had).
2. **Failed-child detection** — a bit propagates upstream along tree edges
   (leaves initiate); a parent that misses a child's slot floods a
   ``failed_child`` claim.
3. **LFC detection** — witnesses (as in AGG) measure, per failed parent,
   the stretch of consecutive failed ancestors using the ``failed_child``
   claims as the live frontier, and flood ``lfc_tail`` / ``not_lfc_tail``
   determinations.  The root outputs false on any ``lfc_tail``, on any
   deep (``x >= t``) failed parent with no reassuring ``not_lfc_tail``, or
   on budget overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..obs import spans as _spans
from ..sim.flooding import FloodManager
from ..sim.message import Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from . import wire
from .agg import AggNode, TreeState, run_agg
from .params import ProtocolParams
from .wire import VERI_FLOOD_KINDS


class VeriNode(NodeHandler):
    """Per-node handler implementing Algorithm 3.

    ``tree_state`` is the node's state from the preceding AGG execution
    (parent/children/ancestors/levels/critical failures).  Nodes that never
    activated during AGG only forward floods.
    """

    def __init__(
        self,
        params: ProtocolParams,
        node_id: int,
        tree_state: Optional[TreeState],
        start_round: int = 1,
    ) -> None:
        self.p = params
        self.node_id = node_id
        self.is_root = node_id == params.root
        self.start_round = start_round
        self.state = tree_state or TreeState()
        self.floods = FloodManager(VERI_FLOOD_KINDS)

        #: (parent, x, claimer) failed-parent claims observed.
        self.failed_parent_claims: Set[Tuple[int, int, int]] = set()
        #: Nodes claimed to be failed children.
        self.failed_children: Set[int] = set()
        #: Nodes with an lfc_tail / not_lfc_tail determination observed.
        self.lfc_tails: Set[int] = set()
        self.not_lfc_tails: Set[int] = set()
        self.overflow_seen = False

        self.bits_sent = 0
        self.done = False
        #: Root-only: VERI's verdict (None until the execution finishes).
        self.output: Optional[bool] = None
        self._obs_phase: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Round dispatch.
    # ------------------------------------------------------------------ #

    #: Phase names in dispatch order, for observability spans.
    OBS_PHASES = (
        "veri.failed_parent",
        "veri.failed_child",
        "veri.lfc_detection",
    )

    def _obs_mark(self, rnd: int, rel: int) -> None:
        """Root-timeline phase spans; see ``AggNode._obs_mark``."""
        cd = self.p.cd
        idx = 0 if rel <= 2 * cd + 1 else 1 if rel <= 4 * cd + 2 else 2
        tracer = _spans.active()
        if idx != self._obs_phase:
            if self._obs_phase is not None:
                tracer.end(tid=self.node_id, round=rnd - 1)
            tracer.begin(
                self.OBS_PHASES[idx], cat="veri", tid=self.node_id, round=rnd
            )
            self._obs_phase = idx
        if rel == self.p.veri_rounds:
            tracer.end(tid=self.node_id, round=rnd)
            self._obs_phase = None

    def obs_close(self, rnd: int) -> None:
        """Close any open phase span (handler discarded mid-phase)."""
        if self._obs_phase is not None and _spans.enabled:
            _spans.active().end(tid=self.node_id, round=rnd)
            self._obs_phase = None

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        rel = rnd - self.start_round + 1
        if rel < 1 or rel > self.p.veri_rounds:
            return []
        if _spans.enabled and self.is_root:
            self._obs_mark(rnd, rel)

        fresh = self.floods.absorb(inbox, rel)
        self._note_flood_observations(fresh)

        cd = self.p.cd
        if not self.overflow_seen:
            if rel <= 2 * cd + 1:
                self._failed_parent_round(rel, inbox)
            elif rel <= 4 * cd + 2:
                self._failed_child_round(rel - (2 * cd + 1), inbox)
            else:
                self._lfc_round(rel - (4 * cd + 2))

        out = self.floods.emit()
        out = self._enforce_budget(out)

        if self.is_root and rel == self.p.veri_rounds:
            self._produce_output()
        return out

    # ------------------------------------------------------------------ #
    # Phase 1: failed-parent detection (phase rounds 1 .. 2cd+1).
    # ------------------------------------------------------------------ #

    def _failed_parent_round(self, p: int, inbox: Sequence[Envelope]) -> None:
        st = self.state
        if self.is_root and p == 1:
            self.floods.initiate(wire.detect_failed_parent(self.p))
            return
        if not st.activated or self.is_root or st.level > self.p.cd:
            return
        if p == st.level + 1:
            heard_parent = any(env.sender == st.parent for env in inbox)
            if not heard_parent:
                x = st.max_level - st.level + 1
                claim = (st.parent, x, self.node_id)
                self.floods.initiate(
                    wire.failed_parent(self.p, st.parent, x, self.node_id)
                )
                self.failed_parent_claims.add(claim)

    # ------------------------------------------------------------------ #
    # Phase 2: failed-child detection (phase rounds 1 .. 2cd+1).
    # ------------------------------------------------------------------ #

    def _failed_child_round(self, q: int, inbox: Sequence[Envelope]) -> None:
        st = self.state
        if not st.activated or st.level > self.p.cd:
            return
        if q != self.p.cd - st.level + 1:
            return
        if not st.children:
            self.floods.initiate(wire.detect_failed_child(self.p, self.node_id))
            return
        heard_from = {env.sender for env in inbox}
        for child in sorted(st.children):
            if child not in heard_from:
                self.floods.initiate(wire.failed_child(self.p, child))
                self.failed_children.add(child)

    # ------------------------------------------------------------------ #
    # Phase 3: LFC detection (phase rounds 1 .. cd+1).
    # ------------------------------------------------------------------ #

    def _lfc_round(self, p: int) -> None:
        if p != 1 or not self.state.activated:
            return
        claimed_parents = sorted({v for (v, _x, _c) in self.failed_parent_claims})
        for v in claimed_parents:
            verdict = self._lfc_verdict(v)
            if verdict is None:
                continue
            if verdict:
                self.floods.initiate(wire.lfc_tail(self.p, v))
                self.lfc_tails.add(v)
            else:
                self.floods.initiate(wire.not_lfc_tail(self.p, v))
                self.not_lfc_tails.add(v)

    def _lfc_verdict(self, v: int) -> Optional[bool]:
        """Lines 21-29 of Algorithm 3: is ``v`` the tail of an LFC?

        Returns None when this node is not a witness of ``v``.
        """
        st = self.state
        anc = st.ancestors
        t = self.p.t
        i = _index_of(anc, v)
        j = self._boundary_index()
        if i is None or i > t:
            return None
        if j is not None and i > j:
            return None
        k = None
        for idx in range(i, len(anc)):
            node = anc[idx]
            if node is None:
                break
            if (
                node in self.failed_children
                or node == self.p.root
                or node in st.critical_failures
            ):
                k = idx
                break
        if k is None:
            return True  # k = infinity: chain may extend past our horizon
        return k - i + 1 >= t

    def _boundary_index(self) -> Optional[int]:
        """Smallest ``j`` with ``ancestors[j]`` the root or an AGG-time
        critical failure (fragment boundary)."""
        st = self.state
        for j, node in enumerate(st.ancestors):
            if node is None:
                return None
            if node == self.p.root or node in st.critical_failures:
                return j
        return None

    # ------------------------------------------------------------------ #
    # Observations, output, budget.
    # ------------------------------------------------------------------ #

    def _note_flood_observations(self, fresh: Sequence[Envelope]) -> None:
        for env in fresh:
            kind, payload = env.part.kind, env.part.payload
            if kind == "failed_parent":
                self.failed_parent_claims.add(payload)
            elif kind == "failed_child":
                self.failed_children.add(payload[0])
            elif kind == "lfc_tail":
                self.lfc_tails.add(payload[0])
            elif kind == "not_lfc_tail":
                self.not_lfc_tails.add(payload[0])
            elif kind == "veri_overflow":
                self.overflow_seen = True

    def _produce_output(self) -> None:
        self.done = True
        if self.overflow_seen:
            self.output = False
            return
        if self.lfc_tails:
            self.output = False  # line 33: an LFC exists
            return
        for (v, x, _claimer) in self.failed_parent_claims:
            if x >= self.p.t and v not in self.not_lfc_tails:
                # Line 35: all of v's witnesses may have failed — VERI's
                # allowed one-sided error.
                self.output = False
                return
        self.output = True

    def _enforce_budget(self, out: List[Part]) -> List[Part]:
        planned = sum(part.bits for part in out)
        if (
            not self.overflow_seen
            and out
            and self.bits_sent + planned > self.p.veri_bit_budget
        ):
            self.overflow_seen = True
            overflow_part = wire.veri_overflow(self.p)
            self.floods.initiate(overflow_part)
            self.floods.emit()
            out = [overflow_part]
            planned = overflow_part.bits
        elif self.overflow_seen:
            out = [part for part in out if part.kind == "veri_overflow"]
            planned = sum(part.bits for part in out)
        self.bits_sent += planned
        return out


def _index_of(ancestors: List[Optional[int]], target: int) -> Optional[int]:
    for idx, node in enumerate(ancestors):
        if node == target:
            return idx
    return None


# --------------------------------------------------------------------- #
# Standalone runner for an AGG + VERI pair.
# --------------------------------------------------------------------- #


@dataclass
class PairOutcome:
    """Result of one AGG execution immediately followed by VERI."""

    agg_result: Optional[int]
    agg_aborted: bool
    veri_output: Optional[bool]
    agg_stats: SimStats
    veri_stats: SimStats
    #: Line 4 of Algorithm 1: the pair's result is usable iff AGG did not
    #: abort and VERI returned true.
    @property
    def accepted(self) -> bool:
        return (not self.agg_aborted) and self.veri_output is True


def run_agg_veri_pair(
    topology: Topology,
    inputs: Dict[int, int],
    t: int,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf=None,
    max_input: Optional[int] = None,
    injectors=(),
    monitors=(),
) -> PairOutcome:
    """Run AGG then VERI back-to-back on one shared failure schedule.

    The schedule's crash rounds are interpreted on the combined timeline:
    AGG occupies rounds ``1 .. 7cd+4`` and VERI rounds ``7cd+5 .. 12cd+7``.
    ``injectors`` and ``monitors`` are shared by both executions (injector
    fault budgets therefore span the pair).
    """
    schedule = schedule or FailureSchedule()
    schedule.validate(topology)
    agg = run_agg(
        topology,
        inputs,
        t,
        schedule=schedule,
        c=c,
        caaf=caaf,
        max_input=max_input,
        injectors=injectors,
        monitors=monitors,
    )
    params = next(iter(agg.nodes.values())).p
    veri_nodes = {
        u: VeriNode(params, u, agg.nodes[u].state) for u in topology.nodes()
    }
    veri_start = params.agg_rounds + 1
    shifted = {
        u: max(1, rnd - params.agg_rounds)
        for u, rnd in schedule.crash_rounds.items()
    }
    veri_network = Network(
        topology.adjacency,
        veri_nodes,
        shifted,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
    )
    veri_stats = veri_network.run(params.veri_rounds, stop_on_output=False)
    root_veri = veri_nodes[topology.root]
    return PairOutcome(
        agg_result=agg.result,
        agg_aborted=agg.aborted,
        veri_output=root_veri.output,
        agg_stats=agg.stats,
        veri_stats=veri_stats,
    )
