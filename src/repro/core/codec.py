"""A concrete bit-level codec for the AGG/VERI wire format.

The simulator charges each :class:`~repro.sim.message.Part` its declared
bit size without materializing bytes.  This module closes the loop: it
actually encodes every part kind into a bitstring and decodes it back,
proving the declared sizes are *achievable* (every encoding fits within
the bits the part was charged) — i.e. the CC accounting is not fictional.

Layout per part: a 5-bit kind tag, the sender id (``logN`` bits, as the
paper's implicit sender attachment), then kind-specific fixed-width
fields.  Ancestor lists are padded to ``2t`` entries with an explicit
validity count folded into the level field's spare values.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.message import Part
from .params import ProtocolParams

#: Structured decode-failure reasons (the :class:`CodecError` taxonomy).
CODEC_BAD_TAG = "bad-tag"
CODEC_TRUNCATED = "truncated"
CODEC_BAD_BITSTRING = "bad-bitstring"
CODEC_TRAILING = "trailing-bits"
CODEC_BAD_VALUE = "bad-value"


class CodecError(ValueError):
    """A bitstring failed structured decoding.

    Decoders never crash with a raw ``KeyError``/``IndexError`` on
    garbage input and never silently accept it: every failure mode maps
    to one ``reason`` (:data:`CODEC_BAD_TAG`, :data:`CODEC_TRUNCATED`,
    :data:`CODEC_BAD_BITSTRING`, :data:`CODEC_TRAILING`,
    :data:`CODEC_BAD_VALUE`) so the integrity layer and tests can branch
    on *why* a decode failed.
    """

    def __init__(self, reason: str, detail: str) -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"[{reason}] {detail}")

#: Tag values for each wire kind (5 bits: up to 32 kinds).
KIND_TAGS = {
    "tree_construct": 0,
    "ack": 1,
    "aggregation": 2,
    "critical_failure": 3,
    "flooded_psum": 4,
    "determination": 5,
    "agg_abort": 6,
    "detect_failed_parent": 7,
    "failed_parent": 8,
    "detect_failed_child": 9,
    "failed_child": 10,
    "lfc_tail": 11,
    "not_lfc_tail": 12,
    "veri_overflow": 13,
}
TAGS_TO_KIND = {v: k for k, v in KIND_TAGS.items()}

#: Determination labels on the wire (1 bit).
from .wire import DOMINATED, KEEP

LABEL_BITS = {DOMINATED: 0, KEEP: 1}
BITS_LABEL = {0: DOMINATED, 1: KEEP}


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self.bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in reversed(range(width)):
            self.bits.append((value >> i) & 1)

    def as_string(self) -> str:
        return "".join(str(b) for b in self.bits)

    def __len__(self) -> int:
        return len(self.bits)


class BitReader:
    """Sequential bit consumer."""

    def __init__(self, bits: str) -> None:
        self.bits = bits
        self.pos = 0

    def read(self, width: int) -> int:
        if self.pos + width > len(self.bits):
            raise CodecError(
                CODEC_TRUNCATED,
                f"needed {width} bit(s) at offset {self.pos}, only "
                f"{len(self.bits) - self.pos} left",
            )
        chunk = self.bits[self.pos : self.pos + width]
        self.pos += width
        if width == 0:
            return 0
        try:
            return int(chunk, 2)
        except ValueError:
            raise CodecError(
                CODEC_BAD_BITSTRING,
                f"non-binary character in chunk {chunk!r} at offset "
                f"{self.pos - width}",
            ) from None

    @property
    def remaining(self) -> int:
        return len(self.bits) - self.pos


#: Sentinel id meaning "no ancestor" in padded lists: the all-ones id is
#: reserved (node ids are 0..N-1 and N <= 2^L - 1 whenever padding is
#: needed; for exact powers of two one extra bit per entry covers it).
def _anc_width(p: ProtocolParams) -> int:
    limit = 1 << p.id_bits
    return p.id_bits if p.n_nodes < limit else p.id_bits + 1


def encode_part(p: ProtocolParams, sender: int, part: Part) -> str:
    """Encode one part (with its sender id) into a bitstring."""
    w = BitWriter()
    kind = part.kind
    w.write(KIND_TAGS[kind], 5)
    w.write(sender, p.id_bits)
    payload = part.payload
    if kind == "tree_construct":
        level, ancestors = payload
        w.write(level, p.level_bits)
        anc_w = _anc_width(p)
        sentinel = (1 << anc_w) - 1
        padded = list(ancestors)[: 2 * p.t]
        padded += [None] * (2 * p.t - len(padded))
        for entry in padded:
            w.write(sentinel if entry is None else entry, anc_w)
    elif kind == "ack":
        w.write(payload[0], p.id_bits)
    elif kind == "aggregation":
        psum, max_level = payload
        w.write(psum, p.psum_bits)
        w.write(max_level, p.level_bits)
    elif kind in ("critical_failure", "failed_child", "lfc_tail", "not_lfc_tail"):
        w.write(payload[0], p.id_bits)
    elif kind == "flooded_psum":
        source, psum = payload
        w.write(source, p.id_bits)
        w.write(psum, p.psum_bits)
    elif kind == "determination":
        label, source = payload
        w.write(LABEL_BITS[label], 1)
        w.write(source, p.id_bits)
    elif kind == "failed_parent":
        parent, depth, claimer = payload
        w.write(parent, p.id_bits)
        w.write(depth, p.level_bits)
        w.write(claimer, p.id_bits)
    elif kind in ("agg_abort", "veri_overflow", "detect_failed_parent"):
        pass  # tag + sender only (detect carries its 1 bit implicitly)
    elif kind == "detect_failed_child":
        w.write(payload[0], p.id_bits)
    else:
        raise ValueError(f"unknown wire kind {kind!r}")
    return w.as_string()


def decode_part(
    p: ProtocolParams, bits: str, strict: bool = False
) -> Tuple[int, str, tuple]:
    """Decode a bitstring into ``(sender, kind, payload)``.

    Any malformed input raises a structured :class:`CodecError` — never a
    raw ``KeyError`` or unhandled exception.  With ``strict=True``,
    leftover bits after the decoded part also raise
    (:data:`CODEC_TRAILING`), so a truncation/extension attack cannot
    hide in the padding.
    """
    r = BitReader(bits)
    tag = r.read(5)
    kind = TAGS_TO_KIND.get(tag)
    if kind is None:
        raise CodecError(CODEC_BAD_TAG, f"unknown kind tag {tag}")
    sender = r.read(p.id_bits)
    if sender >= p.n_nodes:
        raise CodecError(
            CODEC_BAD_VALUE,
            f"sender id {sender} out of range [0, {p.n_nodes})",
        )
    if kind == "tree_construct":
        level = r.read(p.level_bits)
        anc_w = _anc_width(p)
        sentinel = (1 << anc_w) - 1
        ancestors = []
        for _ in range(2 * p.t):
            entry = r.read(anc_w)
            if entry != sentinel:
                ancestors.append(entry)
        payload = (level, tuple(ancestors))
    elif kind == "ack":
        payload = (r.read(p.id_bits),)
    elif kind == "aggregation":
        payload = (r.read(p.psum_bits), r.read(p.level_bits))
    elif kind in ("critical_failure", "failed_child", "lfc_tail", "not_lfc_tail"):
        payload = (r.read(p.id_bits),)
    elif kind == "flooded_psum":
        payload = (r.read(p.id_bits), r.read(p.psum_bits))
    elif kind == "determination":
        payload = (BITS_LABEL[r.read(1)], r.read(p.id_bits))  # 1 bit: total
    elif kind == "failed_parent":
        payload = (r.read(p.id_bits), r.read(p.level_bits), r.read(p.id_bits))
    elif kind in ("agg_abort", "veri_overflow", "detect_failed_parent"):
        payload = ()
    elif kind == "detect_failed_child":
        payload = (r.read(p.id_bits),)
    else:  # pragma: no cover - TAGS_TO_KIND is exhaustive
        raise CodecError(CODEC_BAD_TAG, f"unhandled kind {kind!r}")
    if strict and r.remaining:
        raise CodecError(
            CODEC_TRAILING,
            f"{r.remaining} unconsumed bit(s) after a complete "
            f"{kind!r} part",
        )
    return sender, kind, payload


def encoding_fits_declared_size(
    p: ProtocolParams, sender: int, part: Part, slack_bits: int = 2
) -> bool:
    """Whether the concrete encoding stays within the part's charged bits.

    ``slack_bits`` absorbs the one extra padding bit per ancestor entry
    when ``N`` is an exact power of two.
    """
    encoded = encode_part(p, sender, part)
    budget = part.bits + slack_bits * max(1, 2 * p.t)
    return len(encoded) <= budget
