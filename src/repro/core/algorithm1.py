"""Algorithm 1: the near-optimal communication-time tradeoff SUM protocol.

Given a TC budget of ``b`` flooding rounds (``b >= 21c``), the first
``b - 2c`` flooding rounds are divided into ``x = floor((b-2c)/(19c))``
intervals of ``19c`` flooding rounds each.  The root privately selects
``logN`` interval indices uniformly at random (with replacement); in each
distinct selected interval it initiates an AGG + VERI pair with
``t = floor(2f / x)``.  The first pair where AGG does not abort and VERI
outputs true yields the final (always correct, by Theorems 5 and 7) result.
With probability at least ``1 - 1/N`` some selected interval contains at
most ``t`` edge failures and the protocol stops there (Theorems 4 and 7);
otherwise the last ``2c`` flooding rounds run the brute-force protocol.

Expected communication: at most ``min(x, f+1, logN)`` pairs actually run,
each costing ``O((t+1) logN)`` per node, plus ``O(N logN) / N`` for the
rare brute-force fallback — total
``O((f/b logN + logN) * min(b, f, logN))``, Theorem 1.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..obs import spans as _spans
from ..sim.message import Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from .agg import AggNode
from .caaf import CAAF, SUM
from .params import ProtocolParams, params_for
from .veri import VeriNode


@dataclass(frozen=True)
class TradeoffPlan:
    """Static schedule shared by all nodes (only the root knows the coins).

    The interval grid is deterministic given ``(b, c, d)``: interval ``i``
    (1-based) spans rounds ``(i-1)*19cd + 1 .. i*19cd``; the brute-force
    fallback occupies the last ``2c`` flooding rounds.
    """

    params: ProtocolParams
    b: int
    f: int

    def __post_init__(self) -> None:
        if self.b < 21 * self.params.c:
            raise ValueError(
                f"Theorem 1 requires b >= 21c (b={self.b}, c={self.params.c})"
            )
        if self.f < 1:
            raise ValueError("Theorem 1 requires f >= 1")

    @property
    def x(self) -> int:
        """Number of intervals: ``floor((b - 2c) / (19c))``."""
        return (self.b - 2 * self.params.c) // (19 * self.params.c)

    @property
    def t(self) -> int:
        """AGG/VERI tolerance parameter: ``floor(2f / x)``."""
        return (2 * self.f) // self.x

    @property
    def interval_rounds(self) -> int:
        """Rounds per interval: ``19c`` flooding rounds."""
        return 19 * self.params.cd

    def interval_start(self, i: int) -> int:
        """First round of interval ``i`` (1-based)."""
        if not 1 <= i <= self.x:
            raise ValueError(f"interval {i} out of range [1, {self.x}]")
        return (i - 1) * self.interval_rounds + 1

    @property
    def bruteforce_start(self) -> int:
        """First round of the brute-force fallback window."""
        return (self.b - 2 * self.params.c) * self.params.diameter + 1

    @property
    def total_rounds(self) -> int:
        """The TC budget in rounds: ``b * d``."""
        return self.b * self.params.diameter

    def select_intervals(self, rng: random.Random) -> List[int]:
        """The root's private coins: ``logN`` uniform draws, deduplicated.

        Line 1 of Algorithm 1 sorts the draws non-decreasingly and line 2
        skips repeats, so the result is the sorted set of distinct draws.
        """
        draws = max(1, math.ceil(math.log2(self.params.n_nodes)))
        picks = {rng.randint(1, self.x) for _ in range(draws)}
        return sorted(picks)


class Algorithm1Node(NodeHandler):
    """Composite per-node handler: dormant AGG/VERI per interval + fallback.

    Non-root nodes re-arm a fresh (dormant) :class:`AggNode` at every
    interval boundary; it only speaks if the root's ``tree_construct``
    beacon arrives, so unselected intervals cost nothing.  The root arms
    handlers only in its selected intervals.
    """

    def __init__(
        self,
        plan: TradeoffPlan,
        node_id: int,
        my_input: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.plan = plan
        self.p = plan.params.with_t(plan.t)
        self.node_id = node_id
        self.my_input = my_input
        self.is_root = node_id == self.p.root
        if self.is_root:
            self.selected = plan.select_intervals(rng or random.Random())
        else:
            self.selected: List[int] = []

        self._agg: Optional[AggNode] = None
        self._veri: Optional[VeriNode] = None
        self._bf: Optional[BruteForceNode] = None

        self.done = False
        self.result: Optional[int] = None
        #: Diagnostics: interval that produced the accepted result (root).
        self.winning_interval: Optional[int] = None
        self.pairs_run = 0
        self.used_bruteforce = False

    # ------------------------------------------------------------------ #

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        if self.done or rnd > self.plan.total_rounds:
            return []
        out: List[Part] = []
        self._maybe_arm(rnd)
        if self._agg is not None:
            out.extend(self._agg.on_round(rnd, inbox))
        if self._veri is not None:
            out.extend(self._veri.on_round(rnd, inbox))
        if self._bf is not None:
            out.extend(self._bf.on_round(rnd, inbox))
        self._maybe_decide(rnd)
        return out

    def _maybe_arm(self, rnd: int) -> None:
        plan = self.plan
        # Interval boundaries: arm a fresh AGG (root: selected ones only).
        offset = rnd - 1
        if offset % plan.interval_rounds == 0:
            interval = offset // plan.interval_rounds + 1
            if interval <= plan.x:
                self._veri = None
                if self.is_root:
                    if interval in self.selected:
                        self._agg = AggNode(
                            self.p, self.node_id, self.my_input, start_round=rnd
                        )
                        self.pairs_run += 1
                        self._current_interval = interval
                        if _spans.enabled:
                            _spans.active().event(
                                "algorithm1.arm_interval",
                                cat="protocol",
                                tid=self.node_id,
                                round=rnd,
                                interval=interval,
                            )
                    else:
                        self._agg = None
                else:
                    self._agg = AggNode(
                        self.p, self.node_id, self.my_input, start_round=rnd
                    )
        # AGG -> VERI handoff inside the interval.
        if (
            self._agg is not None
            and offset % plan.interval_rounds == self.p.agg_rounds
        ):
            self._veri = VeriNode(
                self.p, self.node_id, self._agg.state, start_round=rnd
            )
        # Brute-force fallback window.
        if rnd == plan.bruteforce_start and self._bf is None:
            from ..baselines.bruteforce import BruteForceNode

            if self._agg is not None:
                self._agg.obs_close(rnd)
            if self._veri is not None:
                self._veri.obs_close(rnd)
            self._agg = None
            self._veri = None
            if self.is_root:
                self.used_bruteforce = True
                if _spans.enabled:
                    _spans.active().event(
                        "algorithm1.arm_bruteforce",
                        cat="protocol",
                        tid=self.node_id,
                        round=rnd,
                    )
            self._bf = BruteForceNode(
                self.p, self.node_id, self.my_input, start_round=rnd
            )

    def _maybe_decide(self, rnd: int) -> None:
        if not self.is_root or self.done:
            return
        if (
            self._agg is not None
            and self._veri is not None
            and self._veri.done
        ):
            accepted = (not self._agg.aborted) and self._veri.output is True
            if _spans.enabled:
                _spans.active().event(
                    "algorithm1.pair_decided",
                    cat="protocol",
                    tid=self.node_id,
                    round=rnd,
                    interval=self._current_interval,
                    accepted=accepted,
                )
            if accepted:
                self.result = self._agg.result
                self.winning_interval = self._current_interval
                self.done = True
            self._veri = None
            self._agg = None
        if self._bf is not None and self._bf.done:
            self.result = self._bf.result
            self.done = True

    def wants_to_stop(self) -> bool:
        return self.done


@dataclass
class TradeoffOutcome:
    """Result of one Algorithm 1 execution."""

    result: Optional[int]
    stats: SimStats
    rounds: int
    flooding_rounds: int
    pairs_run: int
    winning_interval: Optional[int]
    used_bruteforce: bool
    selected_intervals: List[int]
    plan: TradeoffPlan
    #: The executed network (exposes the effective crash map, which may
    #: include crashes injected online by adaptive adversaries).
    network: Optional[Network] = None
    #: The reliable-transport coordinator, when the run used one
    #: (:class:`repro.resilience.transport.ReliableTransport`).
    transport: Optional[object] = None
    #: The integrity coordinator, when the run used authenticated frames
    #: (:class:`repro.integrity.frames.IntegrityCoordinator`).
    integrity: Optional[object] = None


def run_algorithm1(
    topology: Topology,
    inputs: Dict[int, int],
    f: int,
    b: int,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    rng: Optional[random.Random] = None,
    injectors=(),
    monitors=(),
    transport=None,
    integrity=None,
    allow_root_crash: bool = False,
) -> TradeoffOutcome:
    """Run Algorithm 1 once with TC budget ``b`` and failure budget ``f``.

    ``injectors`` and ``monitors`` are forwarded to the
    :class:`repro.sim.network.Network` (see :mod:`repro.sim.faults` and
    :mod:`repro.sim.monitors`).  ``transport`` (a
    :class:`repro.resilience.transport.TransportConfig` or
    ``ReliableTransport``) runs every protocol round over the reliable
    local-broadcast shim — each logical round then spans the transport's
    window of physical rounds.  ``integrity`` (an
    :class:`repro.integrity.frames.IntegrityConfig` or coordinator)
    additionally wraps every broadcast in an authenticated frame,
    outermost, so corrupted deliveries are detected and dropped (and, with
    a transport underneath, recovered via its NACK path).
    ``allow_root_crash`` opts out of the Section-2 root protection (used
    by the failover layer).
    """
    # Lazy import: resilience builds on core, so core must not import it
    # at module scope (same idiom as the BruteForceNode import above).
    from ..integrity.frames import as_integrity
    from ..resilience.transport import as_transport, wrap_network_args

    schedule = schedule or FailureSchedule()
    schedule.validate(topology, f=f, allow_root_crash=allow_root_crash)
    base = params_for(
        topology, t=0, c=c, caaf=caaf, max_input=max(list(inputs.values()) + [1])
    )
    plan = TradeoffPlan(params=base, b=b, f=f)
    rng = rng or random.Random()
    nodes = {
        u: Algorithm1Node(plan, u, inputs[u], rng=rng if u == topology.root else None)
        for u in topology.nodes()
    }
    transport = as_transport(transport)
    handlers, overhead_fn, window = wrap_network_args(
        transport, nodes, topology.adjacency
    )
    integrity = as_integrity(integrity)
    if integrity is not None:
        # Integrity wraps outermost: what travels on the wire is always an
        # authenticated frame, whatever is inside (transport or protocol).
        handlers = integrity.wrap(handlers)
        overhead_fn = integrity.overhead_fn(overhead_fn)
    network = Network(
        topology.adjacency,
        handlers,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
        allow_root_crash=allow_root_crash,
        overhead_fn=overhead_fn,
    )
    # Logical round K is computed at physical round (K-1)*window + 1, so
    # this cap lets the inner protocol reach exactly its last round.
    max_rounds = (plan.total_rounds - 1) * window + 1
    if _spans.enabled:
        with _spans.active().span(
            "algorithm1",
            cat="protocol",
            tid=topology.root,
            round=0,
            b=b,
            f=f,
            x=plan.x,
            t=plan.t,
        ):
            stats = network.run(max_rounds, stop_on_output=True)
    else:
        stats = network.run(max_rounds, stop_on_output=True)
    root = nodes[topology.root]
    return TradeoffOutcome(
        result=root.result,
        stats=stats,
        rounds=stats.rounds_executed,
        flooding_rounds=stats.flooding_rounds(topology.diameter),
        pairs_run=root.pairs_run,
        winning_interval=root.winning_interval,
        used_bruteforce=root.used_bruteforce,
        selected_intervals=root.selected,
        plan=plan,
        network=network,
        transport=transport,
        integrity=integrity,
    )
