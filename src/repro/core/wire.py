"""Wire format of AGG and VERI: part constructors with exact bit sizes.

Every constructor returns a :class:`repro.sim.message.Part`.  Sizes follow
the paper's accounting: node ids are ``logN`` bits, level fields fit
``c * d``, partial aggregates fit the CAAF's domain, and each part pays a
small tag plus the sender-id overhead the paper attaches to every message.

Flood parts are de-duplicated by ``(kind, payload)``; the payload therefore
contains exactly the fields the paper treats as the flood's *content*.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim.message import TAG_BITS, Part
from .params import ProtocolParams

# --------------------------------------------------------------------- #
# AGG parts (Algorithm 2).
# --------------------------------------------------------------------- #

#: Flood kinds of AGG: forwarded content-deduplicated messages.
AGG_FLOOD_KINDS = frozenset(
    {"critical_failure", "flooded_psum", "determination", "agg_abort"}
)

#: Labels used in determination floods.  ``KEEP`` is the paper's
#: "compulsory||optional" label; DOMINATED psums are excluded by the root.
DOMINATED = "dominated"
KEEP = "compulsory||optional"


def _overhead(p: ProtocolParams) -> int:
    """Tag plus the implicit sender id the paper attaches to messages."""
    return TAG_BITS + p.id_bits


def tree_construct(p: ProtocolParams, level: int, ancestors: Tuple) -> Part:
    """Tree-construction beacon: sender's level and its nearest ``2t`` ancestors."""
    bits = _overhead(p) + p.level_bits + 2 * p.t * p.id_bits
    return Part("tree_construct", (level, ancestors), bits)


def ack(p: ProtocolParams, parent: int) -> Part:
    """Child-to-parent acknowledgement naming the parent."""
    return Part("ack", (parent,), _overhead(p) + p.id_bits)


def aggregation(p: ProtocolParams, psum: int, max_level: int) -> Part:
    """Upstream partial aggregate plus the deepest level seen in the subtree."""
    bits = _overhead(p) + p.psum_bits + p.level_bits
    return Part("aggregation", (psum, max_level), bits)


def critical_failure(p: ProtocolParams, failed: int) -> Part:
    """Flooded claim that ``failed`` experienced a critical failure."""
    return Part("critical_failure", (failed,), _overhead(p) + p.id_bits)


def flooded_psum(p: ProtocolParams, source: int, psum: int) -> Part:
    """Flooded partial aggregate of ``source`` (speculative flooding phase)."""
    bits = _overhead(p) + p.id_bits + p.psum_bits
    return Part("flooded_psum", (source, psum), bits)


def determination(p: ProtocolParams, label: str, source: int) -> Part:
    """Witness determination about ``source``'s flooded partial aggregate."""
    if label not in (DOMINATED, KEEP):
        raise ValueError(f"unknown determination label {label!r}")
    return Part("determination", (label, source), _overhead(p) + p.id_bits + 1)


def agg_abort(p: ProtocolParams) -> Part:
    """The special symbol aborting AGG once a node exceeds its bit budget."""
    return Part("agg_abort", (), _overhead(p))


# --------------------------------------------------------------------- #
# VERI parts (Algorithm 3).
# --------------------------------------------------------------------- #

#: Flood kinds of VERI.
VERI_FLOOD_KINDS = frozenset(
    {
        "detect_failed_parent",
        "failed_parent",
        "detect_failed_child",
        "failed_child",
        "lfc_tail",
        "not_lfc_tail",
        "veri_overflow",
    }
)


def detect_failed_parent(p: ProtocolParams) -> Part:
    """The single bit the root floods to start failed-parent detection."""
    return Part("detect_failed_parent", (), _overhead(p) + 1)


def failed_parent(
    p: ProtocolParams, parent: int, depth_below: int, claimer: int
) -> Part:
    """Flooded claim that ``parent`` failed.

    ``depth_below`` is the paper's ``x = max_level - level + 1`` computed by
    the claiming child; ``claimer`` is the child (the paper attaches the
    sender id to every message, which keeps claims from distinct children
    distinct for flooding purposes).  Three id-sized fields — matching the
    ``3 logN`` factor in VERI's bit budget.
    """
    bits = _overhead(p) + 2 * p.id_bits + p.level_bits
    return Part("failed_parent", (parent, depth_below, claimer), bits)


def detect_failed_child(p: ProtocolParams, leaf: int) -> Part:
    """The upstream bit a leaf floods to start failed-child detection.

    The initiating leaf's id is the flood content, so distinct leaves'
    waves are not merged by de-duplication before reaching their parents.
    """
    return Part("detect_failed_child", (leaf,), _overhead(p) + p.id_bits)


def failed_child(p: ProtocolParams, child: int) -> Part:
    """Flooded claim that ``child`` failed (missed its upstream slot)."""
    return Part("failed_child", (child,), _overhead(p) + p.id_bits)


def lfc_tail(p: ProtocolParams, node: int) -> Part:
    """Witness determination: ``node`` is the tail of a long failure chain."""
    return Part("lfc_tail", (node,), _overhead(p) + p.id_bits)


def not_lfc_tail(p: ProtocolParams, node: int) -> Part:
    """Witness determination: ``node`` is *not* the tail of an LFC."""
    return Part("not_lfc_tail", (node,), _overhead(p) + p.id_bits)


def veri_overflow(p: ProtocolParams) -> Part:
    """The special symbol that makes VERI output false on budget overflow."""
    return Part("veri_overflow", (), _overhead(p))


# --------------------------------------------------------------------- #
# Inbox helpers.
# --------------------------------------------------------------------- #


def parts_from(inbox, sender: int):
    """Envelopes in ``inbox`` physically sent by ``sender``."""
    return [env for env in inbox if env.sender == sender]


def parts_of_kind(inbox, kind: str):
    """Envelopes in ``inbox`` whose part has the given kind."""
    return [env for env in inbox if env.part.kind == kind]
