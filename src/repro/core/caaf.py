"""Commutative and associative aggregate functions (CAAFs).

Section 2 of the paper: a function ``F`` is a CAAF iff it is induced by a
commutative and associative binary operator and every partial aggregate has
domain size polynomial in ``N``.  SUM and COUNT are CAAFs; MAX, MIN, OR, AND
are too.  The paper proves its upper bound for SUM and notes the argument
generalizes to any CAAF by swapping the operator — our AGG implementation is
likewise parameterized by a :class:`CAAF` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple

from ..sim.message import value_bits


@dataclass(frozen=True)
class CAAF:
    """A commutative-and-associative aggregate function.

    Attributes:
        name: Human-readable name ("SUM", "MAX", ...).
        op: The binary operator; must be commutative and associative on the
            value domain.
        identity: Neutral element (``op(identity, x) == x``); used as the
            aggregate of an empty set.
        monotone: Whether including more operands moves the aggregate
            monotonically in one direction (non-decreasing for SUM over
            non-negative inputs, MAX, OR, COUNT; non-increasing for MIN,
            AND).  Monotone CAAFs admit a closed-form correctness interval.
        prepare: Maps a node's raw input into the operator's value domain
            (e.g. COUNT maps every input to 1).
        domain_bits: Bits needed to encode any partial aggregate for a
            system of ``N`` nodes with inputs in ``[0, max_input]``.
    """

    name: str
    op: Callable[[int, int], int]
    identity: int
    monotone: bool = True
    prepare: Callable[[int], int] = field(default=lambda x: x)
    domain_bits: Callable[[int, int], int] = field(
        default=lambda n, max_input: value_bits(max(1, n * max_input))
    )

    def combine(self, values: Iterable[int]) -> int:
        """Aggregate an iterable of already-prepared values."""
        result = self.identity
        for value in values:
            result = self.op(result, value)
        return result

    def aggregate_inputs(self, raw_inputs: Iterable[int]) -> int:
        """Aggregate raw node inputs (applies :attr:`prepare` first)."""
        return self.combine(self.prepare(x) for x in raw_inputs)

    def value_bits_for(self, n_nodes: int, max_input: int) -> int:
        """Wire size of a partial aggregate for this system."""
        return self.domain_bits(n_nodes, max_input)

    def __repr__(self) -> str:
        return f"CAAF({self.name})"


def _sum_bits(n: int, max_input: int) -> int:
    return value_bits(max(1, n * max_input))


def _max_bits(n: int, max_input: int) -> int:
    return value_bits(max(1, max_input))


def _count_bits(n: int, max_input: int) -> int:
    return value_bits(max(1, n))


def _one_bit(n: int, max_input: int) -> int:
    return 1


#: SUM over non-negative integer inputs (the paper's running example).
SUM = CAAF("SUM", lambda a, b: a + b, 0, monotone=True, domain_bits=_sum_bits)

#: COUNT of participating nodes: every input contributes 1.
COUNT = CAAF(
    "COUNT",
    lambda a, b: a + b,
    0,
    monotone=True,
    prepare=lambda _x: 1,
    domain_bits=_count_bits,
)

#: MAX of the inputs.  Identity is 0 because inputs are non-negative.
MAX = CAAF("MAX", max, 0, monotone=True, domain_bits=_max_bits)

#: MIN of the inputs, with a large sentinel identity supplied per use via
#: :func:`bounded_min`.  The module-level MIN assumes inputs below 2**62.
MIN = CAAF(
    "MIN", min, (1 << 62) - 1, monotone=False, domain_bits=_max_bits
)

#: Logical OR over {0, 1} inputs ("has any sensor fired?").
OR = CAAF(
    "OR",
    lambda a, b: a | b,
    0,
    monotone=True,
    prepare=lambda x: 1 if x else 0,
    domain_bits=_one_bit,
)

#: Logical AND over {0, 1} inputs ("are all sensors healthy?").
AND = CAAF(
    "AND",
    lambda a, b: a & b,
    1,
    monotone=False,
    prepare=lambda x: 1 if x else 0,
    domain_bits=_one_bit,
)

#: XOR over {0, 1} inputs — commutative and associative but *not* monotone;
#: included to exercise the exhaustive correctness checker.
XOR = CAAF(
    "XOR",
    lambda a, b: a ^ b,
    0,
    monotone=False,
    prepare=lambda x: x & 1,
    domain_bits=_one_bit,
)


def bounded_min(max_value: int) -> CAAF:
    """MIN with the identity tailored to a known input bound.

    MIN is monotone non-increasing in the inclusion order; we mark it
    ``monotone=False`` at the :class:`CAAF` level and let the correctness
    checker treat the two endpoint aggregates order-agnostically.
    """
    return CAAF(
        f"MIN(<={max_value})",
        min,
        max_value,
        monotone=False,
        domain_bits=lambda n, mi: value_bits(max(1, max_value)),
    )


def _gcd_bits(n: int, max_input: int) -> int:
    return value_bits(max(1, max_input))


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _lcm(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return a * b // _gcd(a, b)


#: Greatest common divisor.  gcd is commutative and associative with
#: identity 0 (``gcd(0, x) = x``), and partial aggregates never exceed the
#: largest input — a textbook CAAF beyond the usual SUM/MAX examples.
GCD = CAAF("GCD", _gcd, 0, monotone=False, domain_bits=_gcd_bits)


def bounded_lcm(max_value: int) -> CAAF:
    """Least common multiple, valid while aggregates stay within a bound.

    lcm is commutative and associative with identity 1, but its aggregates
    can grow super-polynomially — violating the CAAF domain condition — so
    the library only offers it with an explicit cap: aggregation clamps at
    ``max_value + 1`` (a saturating "overflow" sentinel), keeping the wire
    fields bounded while remaining commutative and associative.
    """
    cap = max_value + 1

    def op(a: int, b: int) -> int:
        if a >= cap or b >= cap:
            return cap
        value = _lcm(a, b)
        return value if value <= max_value else cap

    return CAAF(
        f"LCM(<={max_value})",
        op,
        1,
        monotone=True,
        prepare=lambda x: max(1, min(x, cap)),
        domain_bits=lambda n, mi: value_bits(cap),
    )


ALL_CAAFS: Tuple[CAAF, ...] = (SUM, COUNT, MAX, MIN, OR, AND, XOR, GCD)


def by_name(name: str) -> CAAF:
    """Look up one of the built-in CAAFs by name."""
    for caaf in ALL_CAAFS:
        if caaf.name == name:
            return caaf
    raise KeyError(f"unknown CAAF {name!r}")
