"""Shared protocol parameters and the paper's phase/budget arithmetic.

Everything the paper lets protocols know is collected here: ``N``, the root
id, the diameter ``d``, the diameter-stretch constant ``c`` (failures never
push the remaining diameter past ``c * d``), the failure-tolerance parameter
``t`` of AGG/VERI, and the input domain bound used to size value fields.

Phase boundaries follow Algorithms 2 and 3 exactly:

* AGG: tree construction ``2cd+1`` rounds, aggregation ``2cd+1``,
  speculative flooding ``2cd+1``, partial-sum selection ``cd+1`` —
  ``7cd+4`` rounds total (Theorem 3's "at most 11c flooding rounds").
* VERI: failed-parent detection ``2cd+1``, failed-child detection
  ``2cd+1``, LFC detection ``cd+1`` — ``5cd+3`` rounds total (Theorem 6's
  "at most 8c flooding rounds").

Bit budgets are the paper's abort thresholds: a node running AGG floods an
abort symbol once it has sent ``(11t+14)(logN+5)`` bits; a node running VERI
floods an overflow symbol once it has sent ``(5t+7)(3logN+10)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..graphs.topology import Topology
from ..sim.message import id_bits, value_bits
from .caaf import CAAF, SUM


@dataclass(frozen=True)
class ProtocolParams:
    """Static knowledge shared by every node (Section 2's model)."""

    n_nodes: int
    root: int
    diameter: int
    c: int = 2
    t: int = 0
    max_input: int = 0
    caaf: CAAF = SUM

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.diameter < 1:
            raise ValueError("diameter must be >= 1")
        if self.c < 1:
            raise ValueError("c must be >= 1")
        if self.t < 0:
            raise ValueError("t must be >= 0")
        if self.max_input < 0:
            raise ValueError("max_input must be >= 0")

    # ------------------------------------------------------------------ #
    # Wire sizes.
    # ------------------------------------------------------------------ #

    @property
    def id_bits(self) -> int:
        """Bits per node id (the paper's ``log N``)."""
        return id_bits(self.n_nodes)

    @property
    def level_bits(self) -> int:
        """Bits per tree-level field (levels stay within ``c * d``)."""
        return value_bits(max(1, self.c * self.diameter))

    @property
    def psum_bits(self) -> int:
        """Bits per partial aggregate."""
        return self.caaf.value_bits_for(self.n_nodes, self.max_input)

    # ------------------------------------------------------------------ #
    # Timing.
    # ------------------------------------------------------------------ #

    @property
    def cd(self) -> int:
        """``c * d`` — the conservative per-flood round allowance."""
        return self.c * self.diameter

    @property
    def agg_rounds(self) -> int:
        """Total rounds of one AGG execution (``7cd + 4``)."""
        return 7 * self.cd + 4

    @property
    def veri_rounds(self) -> int:
        """Total rounds of one VERI execution (``5cd + 3``)."""
        return 5 * self.cd + 3

    @property
    def pair_rounds(self) -> int:
        """Rounds of an AGG immediately followed by a VERI (``12cd + 7``)."""
        return self.agg_rounds + self.veri_rounds

    # AGG phase boundaries (1-based relative rounds, inclusive).
    @property
    def agg_construction_span(self) -> tuple:
        return (1, 2 * self.cd + 1)

    @property
    def agg_aggregation_span(self) -> tuple:
        return (2 * self.cd + 2, 4 * self.cd + 2)

    @property
    def agg_flooding_span(self) -> tuple:
        return (4 * self.cd + 3, 6 * self.cd + 3)

    @property
    def agg_selection_span(self) -> tuple:
        return (6 * self.cd + 4, 7 * self.cd + 4)

    # VERI phase boundaries.
    @property
    def veri_parent_span(self) -> tuple:
        return (1, 2 * self.cd + 1)

    @property
    def veri_child_span(self) -> tuple:
        return (2 * self.cd + 2, 4 * self.cd + 2)

    @property
    def veri_lfc_span(self) -> tuple:
        return (4 * self.cd + 3, 5 * self.cd + 3)

    # ------------------------------------------------------------------ #
    # Bit budgets (the abort thresholds of Algorithms 2 and 3).
    # ------------------------------------------------------------------ #

    @property
    def agg_bit_budget(self) -> int:
        """AGG's per-node abort threshold ``(11t + 14)(logN + 5)``."""
        return (11 * self.t + 14) * (self.id_bits + 5)

    @property
    def veri_bit_budget(self) -> int:
        """VERI's per-node overflow threshold ``(5t + 7)(3 logN + 10)``."""
        return (5 * self.t + 7) * (3 * self.id_bits + 10)

    # ------------------------------------------------------------------ #
    # Constructors.
    # ------------------------------------------------------------------ #

    def with_t(self, t: int) -> "ProtocolParams":
        """A copy with a different failure-tolerance parameter."""
        return ProtocolParams(
            n_nodes=self.n_nodes,
            root=self.root,
            diameter=self.diameter,
            c=self.c,
            t=t,
            max_input=self.max_input,
            caaf=self.caaf,
        )


def params_for(
    topology: Topology,
    t: int = 0,
    c: int = 2,
    max_input: Optional[int] = None,
    caaf: CAAF = SUM,
) -> ProtocolParams:
    """Build :class:`ProtocolParams` from a topology.

    ``max_input`` defaults to ``N`` — a polynomial input domain, as the
    model requires.
    """
    return ProtocolParams(
        n_nodes=topology.n_nodes,
        root=topology.root,
        diameter=topology.diameter,
        c=c,
        t=t,
        max_input=topology.n_nodes if max_input is None else max_input,
        caaf=caaf,
    )
