"""The paper's contribution: AGG, VERI, Algorithm 1, CAAFs, correctness."""

from .agg import AggNode, AggOutcome, TreeState, run_agg
from .algorithm1 import (
    Algorithm1Node,
    TradeoffOutcome,
    TradeoffPlan,
    run_algorithm1,
)
from .caaf import (
    ALL_CAAFS,
    AND,
    CAAF,
    COUNT,
    GCD,
    MAX,
    MIN,
    OR,
    SUM,
    XOR,
    bounded_lcm,
    bounded_min,
    by_name,
)
from .fragments import (
    FragmentModel,
    build_fragment_model,
    oracle_representative_set_is_valid,
    psum_members,
)
from .correctness import (
    achievable_results_exhaustive,
    correctness_interval,
    exact_aggregate,
    exact_sum,
    is_correct_result,
    surviving_nodes,
)
from .params import ProtocolParams, params_for
from .unknown_f import DoublingNode, DoublingOutcome, DoublingPlan, run_unknown_f
from .veri import PairOutcome, VeriNode, run_agg_veri_pair

__all__ = [
    "ALL_CAAFS",
    "AND",
    "AggNode",
    "AggOutcome",
    "Algorithm1Node",
    "CAAF",
    "COUNT",
    "DoublingNode",
    "DoublingOutcome",
    "DoublingPlan",
    "FragmentModel",
    "GCD",
    "MAX",
    "bounded_lcm",
    "build_fragment_model",
    "oracle_representative_set_is_valid",
    "psum_members",
    "MIN",
    "OR",
    "PairOutcome",
    "ProtocolParams",
    "SUM",
    "TradeoffOutcome",
    "TradeoffPlan",
    "TreeState",
    "VeriNode",
    "XOR",
    "achievable_results_exhaustive",
    "bounded_min",
    "by_name",
    "correctness_interval",
    "exact_aggregate",
    "exact_sum",
    "is_correct_result",
    "params_for",
    "run_agg",
    "run_agg_veri_pair",
    "run_algorithm1",
    "run_unknown_f",
    "surviving_nodes",
]
