"""The paper's result-correctness oracle.

Section 2: let ``s2`` be the inputs of all nodes and ``s1`` the inputs of the
nodes that have not failed by the end of the execution, where a node
disconnected from the root (through live nodes) also counts as failed.  A
SUM result is *correct* iff it lies in ``[sum(s1), sum(s2)]``; for a general
CAAF, iff it lies between the min and max of the aggregate over any ``s``
with ``s1 ⊆ s ⊆ s2``.

For CAAFs monotone in the inclusion order the endpoints are simply the
aggregates of ``s1`` and ``s2``; for non-monotone operators we provide an
exhaustive checker usable when ``|s2 - s1|`` is small.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Optional, Set, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from .caaf import CAAF, SUM


def surviving_nodes(
    topology: Topology, schedule: FailureSchedule, end_round: int
) -> Set[int]:
    """Nodes alive at ``end_round`` *and* connected to the root through
    live nodes — the membership of ``s1``."""
    failed = schedule.failed_by(end_round)
    return topology.alive_component(failed)


def correctness_interval(
    caaf: CAAF,
    inputs: Dict[int, int],
    survivors: Iterable[int],
) -> Tuple[int, int]:
    """The ``[lo, hi]`` correctness interval for a monotone-style CAAF.

    ``lo``/``hi`` are the aggregates of ``s1`` (survivors) and ``s2`` (all
    nodes), ordered so the interval is valid for both non-decreasing (SUM,
    MAX) and non-increasing (MIN, AND) operators.
    """
    agg_s1 = caaf.aggregate_inputs(inputs[u] for u in survivors)
    agg_s2 = caaf.aggregate_inputs(inputs.values())
    return (min(agg_s1, agg_s2), max(agg_s1, agg_s2))


def achievable_results_exhaustive(
    caaf: CAAF,
    inputs: Dict[int, int],
    survivors: Iterable[int],
    max_optional: int = 20,
) -> Set[int]:
    """All aggregates over sets ``s`` with ``s1 ⊆ s ⊆ s2`` (exact, small cases).

    This implements the paper's footnote-6 alternative correctness
    definition exactly; it enumerates ``2^k`` subsets where ``k`` is the
    number of non-surviving nodes, so it is only usable for small ``k``.
    """
    survivor_set = set(survivors)
    optional = [u for u in inputs if u not in survivor_set]
    if len(optional) > max_optional:
        raise ValueError(
            f"{len(optional)} optional nodes: exhaustive enumeration "
            f"capped at {max_optional}"
        )
    base = [inputs[u] for u in survivor_set]
    results = set()
    for k in range(len(optional) + 1):
        for extra in combinations(optional, k):
            values = base + [inputs[u] for u in extra]
            results.add(caaf.aggregate_inputs(values))
    return results


def is_correct_result(
    result: Optional[int],
    caaf: CAAF,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    end_round: int,
    exhaustive: bool = False,
) -> bool:
    """Whether ``result`` is correct per the paper's definition.

    ``None`` results (protocol produced no output) are never correct.  With
    ``exhaustive=True`` the strict footnote-6 definition is checked (result
    must equal some achievable aggregate); otherwise the interval definition
    is used, which is exact for monotone CAAFs.
    """
    if result is None:
        return False
    survivors = surviving_nodes(topology, schedule, end_round)
    if exhaustive or not caaf.monotone:
        try:
            return result in achievable_results_exhaustive(
                caaf, inputs, survivors
            )
        except ValueError:
            pass  # too many optional nodes: fall back to the interval
    lo, hi = correctness_interval(caaf, inputs, survivors)
    return lo <= result <= hi


def exact_aggregate(caaf: CAAF, inputs: Dict[int, int]) -> int:
    """The failure-free ground truth: the aggregate of all inputs."""
    return caaf.aggregate_inputs(inputs.values())


def exact_sum(inputs: Dict[int, int]) -> int:
    """Ground-truth SUM of all inputs (convenience)."""
    return exact_aggregate(SUM, inputs)
