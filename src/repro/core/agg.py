"""The AGG protocol (Algorithm 2 of the paper).

AGG is a deterministic aggregation protocol parameterized by ``t >= 0``, the
number of edge failures it intends to tolerate.  It runs in four fixed
phases (``7cd + 4`` rounds, i.e. at most ``11c`` flooding rounds):

1. **Tree construction** — a BFS wave of ``tree_construct`` beacons builds a
   spanning tree; every node learns its level, parent, children, and the ids
   of its nearest ``2t`` ancestors.
2. **Tree aggregation** — partial aggregates propagate upstream on a fixed
   schedule (a node at level ``l`` acts in round ``cd - l + 1`` of the
   phase); a parent that misses a child's slot floods a
   ``critical_failure`` claim.
3. **Speculative flooding** — the root floods its partial aggregate in round
   1; a non-root node at level ``l`` floods its own in round ``l + 1`` iff
   it heard *nothing* from its parent in that round.  This is the paper's
   key trick: flooding happens speculatively, before anyone knows which
   floodings are needed, keeping the time complexity at O(1) flooding
   rounds.
4. **Partial-sum selection** — *witnesses* (a node is a witness of each of
   its ``t`` nearest local ancestors and of itself) label each flooded
   partial aggregate ``dominated`` or ``compulsory||optional`` using only
   their 2t-ancestor lists; the root keeps exactly the latter, which form a
   representative set and therefore aggregate to a correct result.

A node floods a special ``agg_abort`` symbol once its sends would exceed
``(11t + 14)(logN + 5)`` bits; with at most ``t`` edge failures this never
happens (Theorem 4) and AGG outputs a correct result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..obs import spans as _spans
from ..sim.flooding import FloodManager
from ..sim.message import Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from . import wire
from .params import ProtocolParams, params_for
from .wire import AGG_FLOOD_KINDS, DOMINATED, KEEP


@dataclass
class TreeState:
    """Per-node tree knowledge AGG hands over to the following VERI run."""

    activated: bool = False
    level: int = -1
    parent: Optional[int] = None
    children: Set[int] = field(default_factory=set)
    #: ``ancestors[0]`` is the node itself, then the nearest 2t ancestors
    #: root-wards; entries beyond the root are None.
    ancestors: List[Optional[int]] = field(default_factory=list)
    max_level: int = -1
    psum: int = 0
    #: Nodes claimed (by flooded ``critical_failure`` messages) to have
    #: critically failed — fragment boundaries for the witness logic.
    critical_failures: Set[int] = field(default_factory=set)


class AggNode(NodeHandler):
    """Per-node handler implementing Algorithm 2.

    ``start_round`` lets Algorithm 1 embed AGG executions at interval
    boundaries; rounds outside ``[start_round, start_round + 7cd + 3]`` are
    ignored.
    """

    def __init__(
        self,
        params: ProtocolParams,
        node_id: int,
        my_input: int,
        start_round: int = 1,
    ) -> None:
        self.p = params
        self.node_id = node_id
        self.is_root = node_id == params.root
        self.start_round = start_round
        self.floods = FloodManager(AGG_FLOOD_KINDS)

        self.state = TreeState()
        if self.is_root:
            self.state.activated = True
            self.state.level = 0
            self.state.ancestors = [node_id] + [None] * (2 * params.t)
        self.state.psum = params.caaf.prepare(my_input)
        self._pending_tree_construct: Optional[int] = None

        #: source id -> flooded partial aggregate (phase 3 observations).
        self.flooded_sources: Dict[int, int] = {}
        #: (label, source) determinations seen (phase 4 observations).
        self.determinations: Set[Tuple[str, int]] = set()

        self.bits_sent = 0
        self.aborted = False
        self.done = False
        #: Root-only: the final aggregate (None if aborted / not finished).
        self.result: Optional[int] = None
        self._obs_phase: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Round dispatch.
    # ------------------------------------------------------------------ #

    #: Phase names in dispatch order, for observability spans.
    OBS_PHASES = (
        "agg.tree_construction",
        "agg.tree_aggregation",
        "agg.speculative_flooding",
        "agg.selection",
    )

    def _obs_mark(self, rnd: int, rel: int) -> None:
        """Emit root-timeline phase spans (phases are fixed round
        windows shared by every node, so the root's view is the
        protocol's).  Only called when tracing is armed."""
        cd = self.p.cd
        idx = (
            0
            if rel <= 2 * cd + 1
            else 1
            if rel <= 4 * cd + 2
            else 2
            if rel <= 6 * cd + 3
            else 3
        )
        tracer = _spans.active()
        if idx != self._obs_phase:
            if self._obs_phase is not None:
                tracer.end(tid=self.node_id, round=rnd - 1)
            tracer.begin(
                self.OBS_PHASES[idx], cat="agg", tid=self.node_id, round=rnd
            )
            self._obs_phase = idx
        if rel == self.p.agg_rounds:
            tracer.end(tid=self.node_id, round=rnd)
            self._obs_phase = None

    def obs_close(self, rnd: int) -> None:
        """Close any open phase span (handler discarded mid-phase)."""
        if self._obs_phase is not None and _spans.enabled:
            _spans.active().end(tid=self.node_id, round=rnd)
            self._obs_phase = None

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        rel = rnd - self.start_round + 1
        if rel < 1 or rel > self.p.agg_rounds:
            return []
        if _spans.enabled and self.is_root:
            self._obs_mark(rnd, rel)

        fresh = self.floods.absorb(inbox, rel)
        self._note_flood_observations(fresh)

        out: List[Part] = []
        if not self.aborted:
            cd = self.p.cd
            if rel <= 2 * cd + 1:
                self._construction_round(rel, inbox, out)
            elif rel <= 4 * cd + 2:
                self._aggregation_round(rel - (2 * cd + 1), inbox, out)
            elif rel <= 6 * cd + 3:
                self._flooding_round(rel - (4 * cd + 2), inbox)
            else:
                self._selection_round(rel - (6 * cd + 3))

        out.extend(self.floods.emit())
        out = self._enforce_budget(out)

        if self.is_root and rel == self.p.agg_rounds:
            self._produce_output()
        return out

    # ------------------------------------------------------------------ #
    # Phase 1: tree construction (rounds 1 .. 2cd+1).
    # ------------------------------------------------------------------ #

    def _construction_round(
        self, rel: int, inbox: Sequence[Envelope], out: List[Part]
    ) -> None:
        st = self.state
        if self.is_root and rel == 1:
            out.append(wire.tree_construct(self.p, 0, ()))

        if not self.is_root and not st.activated:
            beacons = [
                env for env in inbox if env.part.kind == "tree_construct"
            ]
            if beacons:
                # Arbitrary tie breaking, realized as smallest sender id.
                chosen = min(beacons, key=lambda env: env.sender)
                sender_level, sender_ancestors = chosen.part.payload
                st.activated = True
                st.level = sender_level + 1
                st.parent = chosen.sender
                width = 2 * self.p.t
                chain = ([chosen.sender] + list(sender_ancestors))[:width]
                chain += [None] * (width - len(chain))
                st.ancestors = [self.node_id] + chain
                out.append(wire.ack(self.p, chosen.sender))
                self._pending_tree_construct = rel + 1

        if self._pending_tree_construct == rel:
            self._pending_tree_construct = None
            out.append(
                wire.tree_construct(
                    self.p,
                    st.level,
                    tuple(a for a in st.ancestors[1:] if a is not None),
                )
            )

        for env in inbox:
            if env.part.kind == "ack" and env.part.payload == (self.node_id,):
                st.children.add(env.sender)

    # ------------------------------------------------------------------ #
    # Phase 2: tree aggregation (phase rounds 1 .. 2cd+1).
    # ------------------------------------------------------------------ #

    def _aggregation_round(
        self, p: int, inbox: Sequence[Envelope], out: List[Part]
    ) -> None:
        st = self.state
        if not st.activated or st.level > self.p.cd:
            return
        if st.max_level < st.level:
            st.max_level = st.level
        if p != self.p.cd - st.level + 1:
            return
        arrived = {
            env.sender: env.part.payload
            for env in inbox
            if env.part.kind == "aggregation"
        }
        for child in sorted(st.children):
            if child in arrived:
                child_psum, child_max_level = arrived[child]
                st.psum = self.p.caaf.op(st.psum, child_psum)
                st.max_level = max(st.max_level, child_max_level)
            else:
                self.floods.initiate(wire.critical_failure(self.p, child))
                st.critical_failures.add(child)
        # Line 23: every node (root included) broadcasts its aggregate.
        out.append(wire.aggregation(self.p, st.psum, st.max_level))

    # ------------------------------------------------------------------ #
    # Phase 3: speculative flooding (phase rounds 1 .. 2cd+1).
    # ------------------------------------------------------------------ #

    def _flooding_round(self, p: int, inbox: Sequence[Envelope]) -> None:
        st = self.state
        if self.is_root and p == 1:
            self._initiate_psum_flood()
        elif (
            st.activated
            and not self.is_root
            and p == st.level + 1
        ):
            heard_parent = any(env.sender == st.parent for env in inbox)
            if not heard_parent:
                self._initiate_psum_flood()

    def _initiate_psum_flood(self) -> None:
        part = wire.flooded_psum(self.p, self.node_id, self.state.psum)
        if self.floods.initiate(part):
            self.flooded_sources[self.node_id] = self.state.psum

    # ------------------------------------------------------------------ #
    # Phase 4: partial-sum selection (phase rounds 1 .. cd+1).
    # ------------------------------------------------------------------ #

    def _selection_round(self, p: int) -> None:
        if p != 1 or not self.state.activated:
            return
        for source in sorted(self.flooded_sources):
            label = self._witness_label(source)
            if label is not None:
                self.floods.initiate(wire.determination(self.p, label, source))
                self.determinations.add((label, source))

    def _witness_label(self, source: int) -> Optional[str]:
        """Lines 32-39 of Algorithm 2: this node's determination on ``source``.

        Returns None when this node is not a witness of ``source``.
        """
        st = self.state
        anc = st.ancestors
        t = self.p.t
        i = _index_of(anc, source)
        j = self._boundary_index()
        if i is None or i > t:
            return None
        if j is not None and i > j:
            return None
        if j is None:
            return DOMINATED
        dominated = any(
            anc[k] is not None and anc[k] in self.flooded_sources
            for k in range(i + 1, j + 1)
        )
        return DOMINATED if dominated else KEEP

    def _boundary_index(self) -> Optional[int]:
        """Smallest ``j`` with ``ancestors[j]`` the root or a critical failure."""
        st = self.state
        for j, node in enumerate(st.ancestors):
            if node is None:
                return None
            if node == self.p.root or node in st.critical_failures:
                return j
        return None

    # ------------------------------------------------------------------ #
    # Observations, output, and the bit budget.
    # ------------------------------------------------------------------ #

    def _note_flood_observations(self, fresh: Sequence[Envelope]) -> None:
        for env in fresh:
            kind, payload = env.part.kind, env.part.payload
            if kind == "flooded_psum":
                source, psum = payload
                self.flooded_sources.setdefault(source, psum)
            elif kind == "critical_failure":
                self.state.critical_failures.add(payload[0])
            elif kind == "determination":
                self.determinations.add(payload)
            elif kind == "agg_abort":
                self.aborted = True

    def _produce_output(self) -> None:
        self.done = True
        if self.aborted:
            self.result = None
            return
        total = self.p.caaf.identity
        for source, psum in self.flooded_sources.items():
            if (KEEP, source) in self.determinations:
                total = self.p.caaf.op(total, psum)
        self.result = total

    def _enforce_budget(self, out: List[Part]) -> List[Part]:
        """Abort (Algorithm 2's special-symbol mechanism) before exceeding
        the ``(11t + 14)(logN + 5)`` budget by more than the abort symbol."""
        planned = sum(part.bits for part in out)
        if (
            not self.aborted
            and out
            and self.bits_sent + planned > self.p.agg_bit_budget
        ):
            self.aborted = True
            abort_part = wire.agg_abort(self.p)
            self.floods.initiate(abort_part)
            self.floods.emit()
            out = [abort_part]
            planned = abort_part.bits
        if self.aborted:
            out = [part for part in out if part.kind == "agg_abort"]
            planned = sum(part.bits for part in out)
        self.bits_sent += planned
        return out


def _index_of(ancestors: List[Optional[int]], target: int) -> Optional[int]:
    """Smallest index of ``target`` in the ancestor list, else None."""
    for idx, node in enumerate(ancestors):
        if node == target:
            return idx
    return None


# --------------------------------------------------------------------- #
# Standalone runner.
# --------------------------------------------------------------------- #


@dataclass
class AggOutcome:
    """Result of one standalone AGG execution."""

    result: Optional[int]
    aborted: bool
    stats: SimStats
    nodes: Dict[int, AggNode]
    network: Network

    @property
    def tree_states(self) -> Dict[int, TreeState]:
        """Per-node tree state, for feeding a subsequent VERI execution."""
        return {u: n.state for u, n in self.nodes.items()}


def run_agg(
    topology: Topology,
    inputs: Dict[int, int],
    t: int,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf=None,
    max_input: Optional[int] = None,
    injectors=(),
    monitors=(),
    transport=None,
    allow_root_crash: bool = False,
) -> AggOutcome:
    """Run one AGG execution on ``topology`` with the given failure schedule.

    ``injectors`` and ``monitors`` are forwarded to the
    :class:`repro.sim.network.Network`.  ``transport`` runs AGG over the
    reliable local-broadcast shim (one logical round per transport
    window); ``allow_root_crash`` opts out of the Section-2 root
    protection.
    """
    from .caaf import SUM

    # Lazy import: core must not depend on resilience at module scope.
    from ..resilience.transport import as_transport, wrap_network_args

    schedule = schedule or FailureSchedule()
    schedule.validate(topology, allow_root_crash=allow_root_crash)
    params = params_for(
        topology,
        t=t,
        c=c,
        caaf=caaf or SUM,
        max_input=max_input
        if max_input is not None
        else max(list(inputs.values()) + [1]),
    )
    nodes = {
        u: AggNode(params, u, inputs[u]) for u in topology.nodes()
    }
    transport = as_transport(transport)
    handlers, overhead_fn, window = wrap_network_args(
        transport, nodes, topology.adjacency
    )
    network = Network(
        topology.adjacency,
        handlers,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
        allow_root_crash=allow_root_crash,
        overhead_fn=overhead_fn,
    )
    # Logical round K is computed at physical round (K-1)*window + 1, so
    # this cap lets the inner protocol reach exactly its last round.
    max_rounds = (params.agg_rounds - 1) * window + 1
    stats = network.run(max_rounds, stop_on_output=False)
    root = nodes[topology.root]
    return AggOutcome(
        result=root.result,
        aborted=root.aborted,
        stats=stats,
        nodes=nodes,
        network=network,
    )
