"""Unknown-``f`` extension via the standard doubling trick (early termination).

The paper (Section 1, with details in its full version) notes that the
known-``f`` assumption can be removed with a doubling trick at the cost of a
``logN`` factor in CC, yielding an *early termination* property: the
protocol's overhead automatically scales with the number of failures that
actually occur.

Our reconstruction (documented as such in DESIGN.md): guesses
``t = 1, 2, 4, ..`` each get one interval of ``19c`` flooding rounds running
an AGG + VERI pair with that ``t``.  Accepting a pair requires AGG not to
abort and VERI to say true, which by Theorems 5 and 7 guarantees a correct
result regardless of how wrong the guess was.  Once the guess reaches the
actual number of edge failures, the pair is guaranteed to be accepted
(Theorems 4 and 7), so the protocol stops after ``O(log F)`` intervals with
per-node cost dominated by the last guess — ``O(F logN)`` bits for ``F``
actual edge failures.  After ``ceil(log2 N) + 1`` unsuccessful guesses the
brute-force protocol finishes the job unconditionally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..sim.message import Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from .agg import AggNode
from .caaf import CAAF, SUM
from .params import ProtocolParams, params_for
from .veri import VeriNode


@dataclass(frozen=True)
class DoublingPlan:
    """Deterministic schedule: guess ``2**k`` in interval ``k`` (0-based)."""

    params: ProtocolParams

    @property
    def max_guesses(self) -> int:
        """``ceil(log2 N) + 1`` guesses reach ``t >= N`` and hence any ``f``."""
        return max(1, math.ceil(math.log2(self.params.n_nodes))) + 1

    @property
    def interval_rounds(self) -> int:
        return 19 * self.params.cd

    def guess_for(self, interval: int) -> int:
        """Tolerance guess for 0-based interval ``interval``."""
        return 1 << interval

    def interval_start(self, interval: int) -> int:
        return interval * self.interval_rounds + 1

    @property
    def bruteforce_start(self) -> int:
        return self.max_guesses * self.interval_rounds + 1

    @property
    def total_rounds(self) -> int:
        return self.max_guesses * self.interval_rounds + 2 * self.params.cd


class DoublingNode(NodeHandler):
    """Per-node handler for the unknown-``f`` doubling protocol.

    The guess schedule is deterministic and known to everyone, so no coins
    are needed; every interval's pair actually runs.
    """

    def __init__(self, plan: DoublingPlan, node_id: int, my_input: int) -> None:
        self.plan = plan
        self.node_id = node_id
        self.my_input = my_input
        self.is_root = node_id == plan.params.root
        self._agg: Optional[AggNode] = None
        self._veri: Optional[VeriNode] = None
        self._bf: Optional[BruteForceNode] = None
        self._current_guess: Optional[int] = None
        self.done = False
        self.result: Optional[int] = None
        self.accepted_guess: Optional[int] = None
        self.pairs_run = 0
        self.used_bruteforce = False

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        if self.done or rnd > self.plan.total_rounds:
            return []
        out: List[Part] = []
        self._maybe_arm(rnd)
        if self._agg is not None:
            out.extend(self._agg.on_round(rnd, inbox))
        if self._veri is not None:
            out.extend(self._veri.on_round(rnd, inbox))
        if self._bf is not None:
            out.extend(self._bf.on_round(rnd, inbox))
        self._maybe_decide()
        return out

    def _maybe_arm(self, rnd: int) -> None:
        plan = self.plan
        offset = rnd - 1
        if offset % plan.interval_rounds == 0:
            interval = offset // plan.interval_rounds
            if interval < plan.max_guesses:
                guess = plan.guess_for(interval)
                params = plan.params.with_t(guess)
                self._current_guess = guess
                self._veri = None
                self._agg = AggNode(
                    params, self.node_id, self.my_input, start_round=rnd
                )
                if self.is_root:
                    self.pairs_run += 1
        if self._agg is not None:
            agg_rounds = self._agg.p.agg_rounds
            if offset % plan.interval_rounds == agg_rounds:
                self._veri = VeriNode(
                    self._agg.p, self.node_id, self._agg.state, start_round=rnd
                )
        if rnd == plan.bruteforce_start and self._bf is None:
            from ..baselines.bruteforce import BruteForceNode

            self._agg = None
            self._veri = None
            if self.is_root:
                self.used_bruteforce = True
            self._bf = BruteForceNode(
                plan.params, self.node_id, self.my_input, start_round=rnd
            )

    def _maybe_decide(self) -> None:
        if not self.is_root or self.done:
            return
        if self._agg is not None and self._veri is not None and self._veri.done:
            if (not self._agg.aborted) and self._veri.output is True:
                self.result = self._agg.result
                self.accepted_guess = self._current_guess
                self.done = True
            self._agg = None
            self._veri = None
        if self._bf is not None and self._bf.done:
            self.result = self._bf.result
            self.done = True

    def wants_to_stop(self) -> bool:
        return self.done


@dataclass
class DoublingOutcome:
    """Result of one unknown-``f`` doubling execution."""

    result: Optional[int]
    stats: SimStats
    rounds: int
    pairs_run: int
    accepted_guess: Optional[int]
    used_bruteforce: bool
    plan: DoublingPlan
    #: The executed network (exposes the effective crash map, which may
    #: include crashes injected online by adaptive adversaries).
    network: Optional[Network] = None
    #: The reliable-transport coordinator, when the run used one
    #: (:class:`repro.resilience.transport.ReliableTransport`).
    transport: Optional[object] = None
    #: The integrity coordinator, when the run used authenticated frames
    #: (:class:`repro.integrity.frames.IntegrityCoordinator`).
    integrity: Optional[object] = None


def run_unknown_f(
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    injectors=(),
    monitors=(),
    transport=None,
    integrity=None,
    allow_root_crash: bool = False,
) -> DoublingOutcome:
    """Run the unknown-``f`` doubling protocol once.

    ``injectors`` and ``monitors`` are forwarded to the
    :class:`repro.sim.network.Network`.  ``transport`` runs the protocol
    over the reliable local-broadcast shim (one logical round per
    transport window); ``integrity`` wraps every broadcast in an
    authenticated frame, outermost, so corrupted deliveries are detected
    and dropped; ``allow_root_crash`` opts out of the Section-2 root
    protection (used by the failover layer).
    """
    # Lazy import: core must not depend on resilience at module scope.
    from ..integrity.frames import as_integrity
    from ..resilience.transport import as_transport, wrap_network_args

    schedule = schedule or FailureSchedule()
    schedule.validate(topology, allow_root_crash=allow_root_crash)
    params = params_for(
        topology, t=0, c=c, caaf=caaf, max_input=max(list(inputs.values()) + [1])
    )
    plan = DoublingPlan(params=params)
    nodes = {
        u: DoublingNode(plan, u, inputs[u]) for u in topology.nodes()
    }
    transport = as_transport(transport)
    handlers, overhead_fn, window = wrap_network_args(
        transport, nodes, topology.adjacency
    )
    integrity = as_integrity(integrity)
    if integrity is not None:
        # Integrity wraps outermost: what travels on the wire is always an
        # authenticated frame, whatever is inside (transport or protocol).
        handlers = integrity.wrap(handlers)
        overhead_fn = integrity.overhead_fn(overhead_fn)
    network = Network(
        topology.adjacency,
        handlers,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
        allow_root_crash=allow_root_crash,
        overhead_fn=overhead_fn,
    )
    # Logical round K is computed at physical round (K-1)*window + 1, so
    # this cap lets the inner protocol reach exactly its last round.
    max_rounds = (plan.total_rounds - 1) * window + 1
    stats = network.run(max_rounds, stop_on_output=True)
    root = nodes[topology.root]
    return DoublingOutcome(
        result=root.result,
        stats=stats,
        rounds=stats.rounds_executed,
        pairs_run=root.pairs_run,
        accepted_guess=root.accepted_guess,
        used_bruteforce=root.used_bruteforce,
        plan=plan,
        network=network,
        transport=transport,
        integrity=integrity,
    )
