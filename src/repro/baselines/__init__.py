"""The paper's pre-existing SUM protocols, used as baselines."""

from .bruteforce import BaselineOutcome, BruteForceNode, run_bruteforce
from .folklore import TreeEpochNode, run_folklore, run_plain_tag
from .gossip import GossipOutcome, PushSumNode, run_gossip

__all__ = [
    "BaselineOutcome",
    "BruteForceNode",
    "GossipOutcome",
    "PushSumNode",
    "TreeEpochNode",
    "run_bruteforce",
    "run_folklore",
    "run_gossip",
    "run_plain_tag",
]
