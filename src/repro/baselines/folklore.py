"""The folklore repeated-tree-aggregation baseline and plain TAG.

"There is also a folklore SUM protocol that tolerates failures by
repeatedly invoking the naive tree-aggregation protocol until it
experiences a failure-free run.  This incurs O(f) TC and O(f logN) CC."

Each epoch rebuilds a BFS spanning tree and aggregates upstream while
piggy-backing a *failure flag*: a parent that misses an acknowledged
child's slot sets the flag, and flags OR together on the way up.  The root
accepts the epoch's sum iff no flag (and no missing child of its own) was
seen; otherwise it starts another epoch.  Every flagged epoch witnesses at
least one fresh crash, so at most ``f + 1`` epochs run.

Plain TAG — the non-fault-tolerant tree aggregation of Madden et al. that
the paper cites as unable to tolerate failures — is the same machinery with
a single epoch and no flag check; we use it to measure how often naive
aggregation silently loses inputs under crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..sim.message import TAG_BITS, Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from ..core.caaf import CAAF, SUM
from ..core.params import ProtocolParams, params_for
from .bruteforce import BaselineOutcome


def _tc_part(p: ProtocolParams, level: int) -> Part:
    return Part("fl_tree", (level,), TAG_BITS + p.id_bits + p.level_bits)


def _ack_part(p: ProtocolParams, parent: int) -> Part:
    return Part("fl_ack", (parent,), TAG_BITS + 2 * p.id_bits)


def _agg_part(p: ProtocolParams, psum: int, flag: bool) -> Part:
    bits = TAG_BITS + p.id_bits + p.psum_bits + 1
    return Part("fl_agg", (psum, flag), bits)


class TreeEpochNode(NodeHandler):
    """One node of the (repeated) tree-aggregation protocol.

    Epoch layout (``2cd + 2`` rounds each):

    * rounds ``1 .. cd+1``: construction — the root beacons in round 1; a
      node adopting a parent at its first beacon acks and re-beacons in the
      same round, so a level-``l`` node activates in round ``l + 1``.
    * rounds ``cd+2 .. 2cd+2``: aggregation — a level-``l`` node sends its
      partial aggregate (and OR-ed failure flag) in round
      ``cd + 1 + (cd - l + 1)``.

    Epochs repeat (``max_epochs`` total) until the root sees a clean run.
    Non-root nodes act only when beaconed, so once the root stops, the
    network is silent.
    """

    def __init__(
        self,
        params: ProtocolParams,
        node_id: int,
        my_input: int,
        max_epochs: int,
        require_clean: bool = True,
    ) -> None:
        self.p = params
        self.node_id = node_id
        self.is_root = node_id == params.root
        self.my_value = params.caaf.prepare(my_input)
        self.max_epochs = max_epochs
        self.require_clean = require_clean
        self.done = False
        self.result: Optional[int] = None
        self.epochs_used = 0
        self._reset_epoch()

    @property
    def epoch_rounds(self) -> int:
        return 2 * self.p.cd + 2

    def _reset_epoch(self) -> None:
        self.level: Optional[int] = 0 if self.is_root else None
        self.parent: Optional[int] = None
        self.children: set = set()
        self.psum = self.my_value
        self.flag = False
        self._pending_beacon = False

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        if self.done:
            return []
        epoch_index, rel = divmod(rnd - 1, self.epoch_rounds)
        rel += 1
        if epoch_index >= self.max_epochs:
            return []
        if rel == 1:
            self._reset_epoch()
            if self.is_root:
                self.epochs_used = epoch_index + 1

        out: List[Part] = []
        cd = self.p.cd
        if rel <= cd + 1:
            self._construction_round(rel, inbox, out)
        else:
            self._aggregation_round(rel - (cd + 1), inbox, out)

        if self.is_root and rel == self.epoch_rounds:
            clean = not self.flag
            last_chance = epoch_index == self.max_epochs - 1
            if clean or not self.require_clean or last_chance:
                self.result = self.psum
                self.done = True
        return out

    def _construction_round(
        self, rel: int, inbox: Sequence[Envelope], out: List[Part]
    ) -> None:
        if self.is_root and rel == 1:
            out.append(_tc_part(self.p, 0))
        if not self.is_root and self.level is None:
            beacons = [env for env in inbox if env.part.kind == "fl_tree"]
            if beacons:
                chosen = min(beacons, key=lambda env: env.sender)
                self.level = chosen.part.payload[0] + 1
                self.parent = chosen.sender
                out.append(_ack_part(self.p, chosen.sender))
                out.append(_tc_part(self.p, self.level))
        for env in inbox:
            if env.part.kind == "fl_ack" and env.part.payload == (self.node_id,):
                self.children.add(env.sender)

    def _aggregation_round(
        self, q: int, inbox: Sequence[Envelope], out: List[Part]
    ) -> None:
        if self.level is None or self.level > self.p.cd:
            return
        if q != self.p.cd - self.level + 1:
            return
        arrived = {
            env.sender: env.part.payload
            for env in inbox
            if env.part.kind == "fl_agg"
        }
        for child in sorted(self.children):
            if child in arrived:
                child_psum, child_flag = arrived[child]
                self.psum = self.p.caaf.op(self.psum, child_psum)
                self.flag = self.flag or child_flag
            else:
                self.flag = True  # an acknowledged child went silent
        if not self.is_root:
            out.append(_agg_part(self.p, self.psum, self.flag))

    def wants_to_stop(self) -> bool:
        return self.done


def run_folklore(
    topology: Topology,
    inputs: Dict[int, int],
    f: int,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    injectors=(),
    monitors=(),
) -> BaselineOutcome:
    """Run the folklore protocol: up to ``f + 1`` tree epochs.

    The final epoch's result is accepted unconditionally — with at most
    ``f`` edge failures, at least one of the ``f + 1`` epochs is
    failure-free, so the accepted epoch is clean.
    """
    schedule = schedule or FailureSchedule()
    schedule.validate(topology, f=f)
    params = params_for(
        topology, t=0, c=c, caaf=caaf, max_input=max(list(inputs.values()) + [1])
    )
    nodes = {
        u: TreeEpochNode(params, u, inputs[u], max_epochs=f + 1)
        for u in topology.nodes()
    }
    network = Network(
        topology.adjacency,
        nodes,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
    )
    max_rounds = (f + 1) * (2 * params.cd + 2)
    stats = network.run(max_rounds, stop_on_output=True)
    root = nodes[topology.root]
    return BaselineOutcome(
        result=root.result,
        stats=stats,
        rounds=stats.rounds_executed,
        network=network,
    )


def run_plain_tag(
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    injectors=(),
    monitors=(),
) -> BaselineOutcome:
    """Run a single non-fault-tolerant tree aggregation (TAG).

    Under failures the result may be incorrect — this is the reference
    point motivating the whole paper.
    """
    schedule = schedule or FailureSchedule()
    schedule.validate(topology)
    params = params_for(
        topology, t=0, c=c, caaf=caaf, max_input=max(list(inputs.values()) + [1])
    )
    nodes = {
        u: TreeEpochNode(
            params, u, inputs[u], max_epochs=1, require_clean=False
        )
        for u in topology.nodes()
    }
    network = Network(
        topology.adjacency,
        nodes,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
    )
    stats = network.run(2 * params.cd + 2, stop_on_output=True)
    root = nodes[topology.root]
    return BaselineOutcome(
        result=root.result,
        stats=stats,
        rounds=stats.rounds_executed,
        network=network,
    )
