"""Push-sum gossip: the *approximate* aggregation family the paper contrasts.

The introduction cites gossip-based aggregation (Kempe et al. [8],
Mosk-Aoyama & Shah [13]) among the approaches that allow bounded error.
We implement broadcast push-sum on the paper's model as a contrast
baseline: every node holds a mass pair ``(s, w)`` (value and weight),
keeps half each round, and spreads the other half equally over its
neighbours; ``s/w`` converges to the global average and ``N * s/w``
estimates SUM.

Two properties the benchmark story needs:

* failure-free, the relative error decays geometrically with rounds —
  gossip is genuinely cheap and accurate *without* crashes;
* a crash destroys in-flight and resident mass, permanently biasing the
  estimate — gossip's answer can leave the correctness interval, which is
  exactly the failure mode the paper's zero-error protocols exclude.

Values travel as fixed-point numbers (``FIXED_POINT_BITS`` per field), so
the CC accounting stays honest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..adversary.schedule import FailureSchedule
from ..core.caaf import SUM
from ..graphs.topology import Topology
from ..sim.message import TAG_BITS, Envelope, Part, id_bits
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats

#: Fixed-point width per mass field on the wire.
FIXED_POINT_BITS = 32


def gossip_part(n_nodes: int, share_s: float, share_w: float) -> Part:
    """One round's broadcast: the per-neighbour mass share."""
    bits = TAG_BITS + id_bits(n_nodes) + 2 * FIXED_POINT_BITS
    return Part("gossip", (round(share_s, 9), round(share_w, 9)), bits)


class PushSumNode(NodeHandler):
    """Broadcast push-sum: keep half the mass, share half with neighbours."""

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        my_input: int,
        degree: int,
        rounds: int,
    ) -> None:
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.degree = max(1, degree)
        self.rounds = rounds
        self.s = float(my_input)
        self.w = 1.0
        self.estimates: List[float] = []

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        for env in inbox:
            if env.part.kind == "gossip":
                share_s, share_w = env.part.payload
                self.s += share_s
                self.w += share_w
        if rnd > self.rounds:
            return []
        out_s, out_w = self.s / 2, self.w / 2
        self.s -= out_s
        self.w -= out_w
        self.estimates.append(self.average_estimate)
        return [
            gossip_part(
                self.n_nodes, out_s / self.degree, out_w / self.degree
            )
        ]

    @property
    def average_estimate(self) -> float:
        """The node's current estimate of the global average."""
        return self.s / self.w if self.w > 0 else 0.0

    @property
    def sum_estimate(self) -> float:
        """The node's current estimate of the SUM (``N`` is known)."""
        return self.n_nodes * self.average_estimate


@dataclass
class GossipOutcome:
    """Result of one push-sum run, read at the root."""

    estimate: float
    true_sum: int
    rounds: int
    stats: SimStats

    @property
    def relative_error(self) -> float:
        """``|estimate - truth| / truth`` (truth = failure-free SUM)."""
        if self.true_sum == 0:
            return abs(self.estimate)
        return abs(self.estimate - self.true_sum) / abs(self.true_sum)

    def within_correctness_interval(
        self,
        topology: Topology,
        inputs: Dict[int, int],
        schedule: FailureSchedule,
    ) -> bool:
        """Whether the estimate meets the paper's zero-error definition.

        Gossip rounds to the nearest integer for the comparison (the
        definition is over integers).
        """
        from ..core.correctness import is_correct_result

        return is_correct_result(
            round(self.estimate), SUM, topology, inputs, schedule, self.rounds
        )


def run_gossip(
    topology: Topology,
    inputs: Dict[int, int],
    rounds: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    injectors=(),
    monitors=(),
) -> GossipOutcome:
    """Run broadcast push-sum for ``rounds`` rounds (default ``10 d``).

    ``injectors`` and ``monitors`` are forwarded to the
    :class:`repro.sim.network.Network`.
    """
    schedule = schedule or FailureSchedule()
    schedule.validate(topology)
    total_rounds = rounds if rounds is not None else 10 * topology.diameter
    nodes = {
        u: PushSumNode(
            u,
            topology.n_nodes,
            inputs[u],
            topology.degree(u),
            total_rounds,
        )
        for u in topology.nodes()
    }
    network = Network(
        topology.adjacency,
        nodes,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
    )
    stats = network.run(total_rounds + 1, stop_on_output=False)
    root = nodes[topology.root]
    return GossipOutcome(
        estimate=root.sum_estimate,
        true_sum=sum(inputs.values()),
        rounds=stats.rounds_executed,
        stats=stats,
    )


def total_mass(nodes: Dict[int, PushSumNode]) -> float:
    """Resident ``s``-mass across nodes (conserved without failures,
    modulo the in-flight halves)."""
    return sum(node.s for node in nodes.values())
