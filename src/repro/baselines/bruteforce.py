"""The brute-force SUM baseline from the paper's introduction.

"A brute-force SUM protocol, which has every node flood its id together
with its value to the whole network, can tolerate arbitrary number of
failures, while incurring O(1) TC and O(N logN) CC."

The root floods a start bit; upon first receiving it every node floods
``(id, input)``; after ``2c`` flooding rounds the root aggregates one value
per distinct id.  Algorithm 1 uses this protocol as its final-2c-flooding-
rounds fallback (executed with probability at most ``1/N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..sim.flooding import FloodManager
from ..sim.message import TAG_BITS, Envelope, Part
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from ..core.caaf import CAAF, SUM
from ..core.params import ProtocolParams, params_for

BF_FLOOD_KINDS = frozenset({"bf_start", "bf_value"})


def bf_start(p: ProtocolParams) -> Part:
    """The start bit the root floods to trigger everyone's value flood."""
    return Part("bf_start", (), TAG_BITS + p.id_bits + 1)


def bf_value(p: ProtocolParams, node: int, value: int) -> Part:
    """A node's flooded ``(id, input)`` pair."""
    bits = TAG_BITS + 2 * p.id_bits + p.psum_bits
    return Part("bf_value", (node, value), bits)


class BruteForceNode(NodeHandler):
    """Per-node handler for the brute-force protocol.

    The execution spans ``2cd`` rounds from ``start_round``; the root's
    result is available at the end.
    """

    def __init__(
        self,
        params: ProtocolParams,
        node_id: int,
        my_input: int,
        start_round: int = 1,
    ) -> None:
        self.p = params
        self.node_id = node_id
        self.is_root = node_id == params.root
        self.my_value = params.caaf.prepare(my_input)
        self.start_round = start_round
        self.floods = FloodManager(BF_FLOOD_KINDS)
        self.values: Dict[int, int] = {}
        self.done = False
        self.result: Optional[int] = None

    @property
    def total_rounds(self) -> int:
        """``2c`` flooding rounds, as in the paper's analysis."""
        return 2 * self.p.cd

    def on_round(self, rnd: int, inbox: Sequence[Envelope]) -> List[Part]:
        rel = rnd - self.start_round + 1
        if rel < 1 or rel > self.total_rounds:
            return []

        fresh = self.floods.absorb(inbox, rel)
        started = any(env.part.kind == "bf_start" for env in fresh)
        for env in fresh:
            if env.part.kind == "bf_value":
                node, value = env.part.payload
                self.values.setdefault(node, value)

        if self.is_root and rel == 1:
            self.floods.initiate(bf_start(self.p))
            self._flood_own_value()
        elif started and not self.is_root:
            self._flood_own_value()

        out = self.floods.emit()
        if self.is_root and rel == self.total_rounds:
            self.result = self.p.caaf.combine(self.values.values())
            self.done = True
        return out

    def _flood_own_value(self) -> None:
        if self.floods.initiate(bf_value(self.p, self.node_id, self.my_value)):
            self.values.setdefault(self.node_id, self.my_value)

    def wants_to_stop(self) -> bool:
        return self.done


@dataclass
class BaselineOutcome:
    """Result of a standalone baseline execution."""

    result: Optional[int]
    stats: SimStats
    rounds: int
    network: Network


def run_bruteforce(
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    injectors=(),
    monitors=(),
) -> BaselineOutcome:
    """Run the brute-force protocol once.

    ``injectors`` and ``monitors`` are forwarded to the
    :class:`repro.sim.network.Network`.
    """
    schedule = schedule or FailureSchedule()
    schedule.validate(topology)
    params = params_for(
        topology, t=0, c=c, caaf=caaf, max_input=max(list(inputs.values()) + [1])
    )
    nodes = {
        u: BruteForceNode(params, u, inputs[u]) for u in topology.nodes()
    }
    network = Network(
        topology.adjacency,
        nodes,
        schedule.crash_rounds,
        injectors=injectors,
        monitors=monitors,
        root=topology.root,
    )
    stats = network.run(2 * params.cd, stop_on_output=False)
    root = nodes[topology.root]
    return BaselineOutcome(
        result=root.result,
        stats=stats,
        rounds=stats.rounds_executed,
        network=network,
    )
