"""Empirical worst-case adversary search.

The paper's CC is defined against the *worst-case* oblivious adversary.
Closed-form worst cases are not computable, so this module estimates them:
random restarts plus greedy hill-climbing over failure schedules, keeping
whatever maximizes the protocol's measured bottleneck bits (or rounds).

It doubles as a falsification harness: every candidate run also checks
result correctness, so a search that ever surfaces an incorrect result has
found a protocol bug (the zero-error claim says it cannot).

Restarts are independent hill climbs, so the search parallelizes over
them: each restart derives its own ``random.Random`` from a seed drawn
upfront, runs to completion (serially within the restart), and a
deterministic reduction — best score, earliest restart wins ties —
makes the result identical for every ``jobs`` value.  Parallel workers
need a picklable evaluator, which closures are not; pass an
:class:`EvaluatorSpec` (built worker-side) instead of a callable when
``jobs > 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.caaf import SUM
from ..core.correctness import is_correct_result
from ..graphs.topology import Topology
from .budget import EdgeBudget, affordable_nodes
from .schedule import FailureSchedule


@dataclass
class SearchResult:
    """The worst schedule found and its measured cost."""

    schedule: FailureSchedule
    cc_bits: int
    rounds: int
    trials: int
    incorrect_runs: int


Evaluator = Callable[[FailureSchedule, random.Random], Tuple[int, int, bool]]
"""Maps (schedule, rng) -> (cc_bits, rounds, correct)."""


@dataclass(frozen=True)
class EvaluatorSpec:
    """Declarative, picklable recipe for a worker-side evaluator.

    The closure :func:`make_algorithm1_evaluator` returns cannot cross a
    process boundary; this spec can, and ``make()`` rebuilds the same
    closure inside the worker.
    """

    topology: Topology
    inputs: Dict[int, int]
    f: int
    b: int
    c: int = 2
    protocol: str = "algorithm1"

    def make(self) -> Evaluator:
        if self.protocol != "algorithm1":
            raise ValueError(
                f"no evaluator recipe for protocol {self.protocol!r}"
            )
        return make_algorithm1_evaluator(
            self.topology, self.inputs, f=self.f, b=self.b, c=self.c
        )


def _resolve_evaluator(evaluator) -> Evaluator:
    return evaluator.make() if isinstance(evaluator, EvaluatorSpec) else evaluator


def make_algorithm1_evaluator(
    topology: Topology,
    inputs: Dict[int, int],
    f: int,
    b: int,
    c: int = 2,
) -> Evaluator:
    """Standard evaluator: run Algorithm 1 and grade it."""
    from ..core.algorithm1 import run_algorithm1

    def evaluate(schedule: FailureSchedule, rng: random.Random):
        out = run_algorithm1(
            topology, inputs, f=f, b=b, schedule=schedule, c=c, rng=rng
        )
        correct = is_correct_result(
            out.result, SUM, topology, inputs, schedule, out.rounds
        )
        return out.stats.max_bits, out.rounds, correct

    return evaluate


def random_schedule(
    topology: Topology, f: int, horizon: int, rng: random.Random
) -> FailureSchedule:
    """A fresh random budgeted schedule (possibly empty)."""
    budget = EdgeBudget(topology, f)
    schedule = FailureSchedule()
    pool = affordable_nodes(budget)
    target = rng.randint(0, max(0, len(pool)))
    while len(schedule) < target:
        pool = affordable_nodes(budget)
        if not pool:
            break
        node = rng.choice(pool)
        budget.charge(node)
        schedule.add(node, rng.randint(1, horizon))
    return schedule


def mutate_schedule(
    topology: Topology,
    schedule: FailureSchedule,
    f: int,
    horizon: int,
    rng: random.Random,
) -> FailureSchedule:
    """One local move: retime a crash, drop one, or add one within budget."""
    crash_rounds = dict(schedule.crash_rounds)
    move = rng.random()
    if crash_rounds and move < 0.4:
        node = rng.choice(sorted(crash_rounds))
        crash_rounds[node] = rng.randint(1, horizon)
    elif crash_rounds and move < 0.6:
        node = rng.choice(sorted(crash_rounds))
        del crash_rounds[node]
    else:
        budget = EdgeBudget(topology, f)
        for node in crash_rounds:
            budget.charge(node)
        pool = affordable_nodes(budget)
        if pool:
            crash_rounds[rng.choice(pool)] = rng.randint(1, horizon)
    return FailureSchedule(crash_rounds)


def _climb_restart(task: tuple) -> Dict[str, object]:
    """One full hill climb from a fresh random schedule (worker entry).

    Deterministic in its task tuple alone: the restart owns a private
    ``Random(seed)``, so restarts can run in any process, in any order.
    """
    evaluator, topology, f, horizon, seed, steps, objective = task
    evaluate = _resolve_evaluator(evaluator)
    rng = random.Random(seed)
    current = random_schedule(topology, f, horizon, rng)
    cc, rounds, correct = evaluate(current, random.Random(rng.random()))
    trials, incorrect = 1, int(not correct)
    score = cc if objective == "cc" else rounds
    for _ in range(steps):
        candidate = mutate_schedule(topology, current, f, horizon, rng)
        c_cc, c_rounds, c_ok = evaluate(candidate, random.Random(rng.random()))
        trials += 1
        incorrect += not c_ok
        c_score = c_cc if objective == "cc" else c_rounds
        if c_score >= score:
            current, score = candidate, c_score
            cc, rounds = c_cc, c_rounds
    return {
        "crash_rounds": dict(current.crash_rounds),
        "cc": cc,
        "rounds": rounds,
        "score": score,
        "trials": trials,
        "incorrect": incorrect,
    }


def search_worst_adversary(
    evaluator: Evaluator,
    topology: Topology,
    f: int,
    horizon: int,
    rng: Optional[random.Random] = None,
    restarts: int = 4,
    steps_per_restart: int = 8,
    objective: str = "cc",
    jobs: int = 1,
) -> SearchResult:
    """Random-restart hill climbing toward the costliest schedule.

    ``objective`` is ``"cc"`` (bottleneck bits) or ``"rounds"``.  Every
    evaluation also verifies zero-error correctness; violations are
    counted in ``incorrect_runs`` (and should always be zero).

    ``jobs > 1`` distributes restarts over worker processes; the result
    is identical for every ``jobs`` value (restart seeds are drawn
    upfront from ``rng``, and the reduction prefers the earliest restart
    on score ties).  Parallel mode requires ``evaluator`` to be an
    :class:`EvaluatorSpec`.
    """
    if objective not in ("cc", "rounds"):
        raise ValueError("objective must be 'cc' or 'rounds'")
    if jobs > 1 and not isinstance(evaluator, EvaluatorSpec):
        raise TypeError(
            "jobs > 1 needs a picklable EvaluatorSpec, not a callable "
            "evaluator (closures cannot cross process boundaries)"
        )
    rng = rng or random.Random()
    evaluate = _resolve_evaluator(evaluator)
    best_schedule = FailureSchedule()
    best_cc, best_rounds = evaluate(best_schedule, random.Random(rng.random()))[:2]
    best_score = best_cc if objective == "cc" else best_rounds
    trials, incorrect = 1, 0

    restart_seeds = [rng.randrange(1 << 62) for _ in range(restarts)]
    tasks = [
        (evaluator, topology, f, horizon, seed, steps_per_restart, objective)
        for seed in restart_seeds
    ]
    from ..exec.pool import pooled_map

    for outcome in pooled_map(_climb_restart, tasks, jobs=jobs):
        trials += outcome["trials"]
        incorrect += outcome["incorrect"]
        if outcome["score"] > best_score:
            best_schedule = FailureSchedule(dict(outcome["crash_rounds"]))
            best_score = outcome["score"]
            best_cc, best_rounds = outcome["cc"], outcome["rounds"]

    return SearchResult(
        schedule=best_schedule,
        cc_bits=best_cc,
        rounds=best_rounds,
        trials=trials,
        incorrect_runs=incorrect,
    )
