"""Constructive oblivious-adversary families.

Worst-case complexity quantifies over *all* oblivious adversaries; to
exercise the protocols we implement generators for the structures the
paper's analysis identifies as decisive:

* uniformly random crashes (baseline noise);
* crashes concentrated in a single time window (the case Algorithm 1's
  random interval selection defends against);
* crashes spread evenly over time (the case a single AGG run with small
  ``t`` handles);
* *blocker* crashes that kill a node's whole neighbourhood at once — the
  Figure 3 scenario that makes speculative flooding necessary;
* *chain* crashes that fail a root-ward path of tree ancestors — the long
  failure chain (LFC) structure VERI exists to detect.

All generators respect the edge-failure budget ``f`` and never crash the
root.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..graphs.topology import Topology
from .budget import EdgeBudget, affordable_nodes
from .schedule import FailureSchedule


def no_failures() -> FailureSchedule:
    """The failure-free schedule."""
    return FailureSchedule()


def random_failures(
    topology: Topology,
    f: int,
    rng: random.Random,
    first_round: int = 1,
    last_round: int = 100,
    respect_c: Optional[int] = None,
    max_tries: int = 200,
) -> FailureSchedule:
    """Crash random affordable nodes at random rounds in a window.

    Keeps adding nodes while the budget allows and candidates remain.  When
    ``respect_c`` is given, candidate crashes that would push the remaining
    diameter past ``respect_c * d`` are skipped (the paper assumes such
    failures do not happen).
    """
    if last_round < first_round:
        raise ValueError("empty crash window")
    budget = EdgeBudget(topology, f)
    schedule = FailureSchedule()
    tries = 0
    while tries < max_tries:
        tries += 1
        pool = affordable_nodes(budget)
        if not pool:
            break
        node = rng.choice(pool)
        when = rng.randint(first_round, last_round)
        if respect_c is not None:
            trial = FailureSchedule(dict(schedule.crash_rounds))
            trial.add(node, when)
            if not trial.respects_c_constraint(topology, respect_c):
                continue
        budget.charge(node)
        schedule.add(node, when)
    return schedule


def concentrated_failures(
    topology: Topology,
    f: int,
    rng: random.Random,
    window: Tuple[int, int],
    respect_c: Optional[int] = None,
) -> FailureSchedule:
    """All crashes land inside one time window.

    This is the adversary that defeats a *single* AGG execution with small
    ``t`` and motivates Algorithm 1's random choice of intervals.
    """
    return random_failures(
        topology,
        f,
        rng,
        first_round=window[0],
        last_round=window[1],
        respect_c=respect_c,
    )


def spread_failures(
    topology: Topology,
    f: int,
    rng: random.Random,
    horizon: int,
    respect_c: Optional[int] = None,
) -> FailureSchedule:
    """Crashes spaced evenly across ``[1, horizon]``.

    With failures spread across Algorithm 1's intervals, most intervals see
    few failures — the favourable case in the Theorem 1 analysis.
    """
    budget = EdgeBudget(topology, f)
    chosen: List[int] = []
    while True:
        pool = affordable_nodes(budget)
        if not pool:
            break
        node = rng.choice(pool)
        budget.charge(node)
        chosen.append(node)
    schedule = FailureSchedule()
    for i, node in enumerate(chosen):
        when = max(1, round((i + 1) * horizon / (len(chosen) + 1)))
        if respect_c is not None:
            trial = FailureSchedule(dict(schedule.crash_rounds))
            trial.add(node, when)
            if not trial.respects_c_constraint(topology, respect_c):
                continue
        schedule.add(node, when)
    return schedule


def targeted_failures(
    topology: Topology,
    f: int,
    at_round: int,
    strategy: str = "degree",
) -> FailureSchedule:
    """Crash the structurally most valuable nodes the budget affords.

    Strategies:

    * ``"degree"`` — highest-degree nodes first (hub attack): maximizes
      edge failures per crashed node, stressing the ``f``-vs-crash-count
      distinction in the model.
    * ``"articulation"`` — articulation points first (partition attack):
      maximizes the number of nodes separated from the root, stressing the
      correctness definition's "disconnected counts as failed" clause.
    * ``"deep"`` — deepest BFS-tree nodes first: stresses the aggregation
      schedule's late slots.
    """
    if strategy not in ("degree", "articulation", "deep"):
        raise ValueError(f"unknown strategy {strategy!r}")
    budget = EdgeBudget(topology, f)
    schedule = FailureSchedule()
    candidates = topology.non_root_nodes()
    if strategy == "degree":
        candidates.sort(key=lambda u: (-topology.degree(u), u))
    elif strategy == "deep":
        levels = topology.levels
        candidates.sort(key=lambda u: (-levels[u], u))
    else:
        arts = articulation_points(topology)
        candidates.sort(
            key=lambda u: (0 if u in arts else 1, -topology.degree(u), u)
        )
    for node in candidates:
        if budget.can_afford(node):
            budget.charge(node)
            schedule.add(node, at_round)
    return schedule


def articulation_points(topology: Topology) -> set:
    """Nodes whose removal disconnects the graph (iterative Tarjan)."""
    adjacency = topology.adjacency
    visited: Dict[int, int] = {}
    low: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    points = set()
    counter = [0]
    for start in adjacency:
        if start in visited:
            continue
        parent[start] = None
        stack: List[Tuple[int, int]] = [(start, 0)]
        order: List[int] = []
        while stack:
            node, child_index = stack.pop()
            if child_index == 0:
                visited[node] = low[node] = counter[0]
                counter[0] += 1
                order.append(node)
            neighbours = adjacency[node]
            advanced = False
            for idx in range(child_index, len(neighbours)):
                nxt = neighbours[idx]
                if nxt not in visited:
                    stack.append((node, idx + 1))
                    parent[nxt] = node
                    stack.append((nxt, 0))
                    advanced = True
                    break
                elif nxt != parent[node]:
                    low[node] = min(low[node], visited[nxt])
            if not advanced and parent[node] is not None:
                p = parent[node]
                low[p] = min(low[p], low[node])
                if low[node] >= visited[p] and parent[p] is not None:
                    points.add(p)
        root_children = sum(1 for u in adjacency if parent.get(u) == start)
        if root_children > 1:
            points.add(start)
    return points


def predicted_tree(topology: Topology) -> Tuple[Dict[int, int], Dict[int, List[int]]]:
    """The aggregation tree AGG builds when construction is failure-free.

    AGG breaks first-message ties by smallest sender id (our deterministic
    realization of the paper's "arbitrary tie breaking"), so the tree is the
    BFS tree where every node's parent is its smallest-id neighbour one
    level closer to the root.  Returns ``(parent, children)`` maps; the root
    has parent ``-1``.
    """
    levels = topology.levels
    parent: Dict[int, int] = {topology.root: -1}
    children: Dict[int, List[int]] = {u: [] for u in topology.nodes()}
    for node in topology.nodes():
        if node == topology.root:
            continue
        lvl = levels[node]
        ups = [v for v in topology.neighbours(node) if levels.get(v) == lvl - 1]
        best = min(ups)
        parent[node] = best
        children[best].append(node)
    return parent, children


def tree_path_to_root(parent: Dict[int, int], node: int) -> List[int]:
    """The tree path ``node, parent(node), ..., root``."""
    path = [node]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    return path


def blocker_failures(
    topology: Topology,
    f: int,
    victim: int,
    at_round: int,
) -> FailureSchedule:
    """Crash ``victim`` and as much of its neighbourhood as the budget allows.

    This reproduces the Figure 3 scenario: a node's partial sum is blocked
    and even its own flooding dies because its entire neighbourhood fails
    with it, forcing descendants to flood speculatively.
    """
    if victim == topology.root:
        raise ValueError("the victim may not be the root")
    budget = EdgeBudget(topology, f)
    schedule = FailureSchedule()
    if not budget.can_afford(victim):
        raise ValueError(
            f"victim {victim} alone costs {budget.cost_of(victim)} edge "
            f"failures; budget is {f}"
        )
    budget.charge(victim)
    schedule.add(victim, at_round)
    for neighbour in topology.neighbours(victim):
        if neighbour == topology.root or neighbour in budget.failed:
            continue
        if budget.can_afford(neighbour):
            budget.charge(neighbour)
            schedule.add(neighbour, at_round)
    return schedule


def chain_failures(
    topology: Topology,
    chain_length: int,
    at_round: int,
    f: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[FailureSchedule]:
    """Crash a root-ward tree path of ``chain_length`` nodes at ``at_round``.

    Built against :func:`predicted_tree`, so it realizes a long failure
    chain (LFC) for AGG/VERI executions whose tree construction finishes
    before ``at_round``: the chain's tail keeps at least one live local
    descendant (the deep node the chain hangs under stays alive).

    Returns None when the topology has no tree path deep enough, or when the
    chain would exceed the ``f`` edge budget.
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    rng = rng or random.Random(0)
    parent, _children = predicted_tree(topology)
    # A survivor node whose ancestor chain (excluding itself and the root)
    # is long enough to crash wholesale.
    candidates = []
    for node in topology.non_root_nodes():
        path = tree_path_to_root(parent, node)
        # path = [node, a1, a2, ..., root]; we crash a1..a_chain_length.
        if len(path) >= chain_length + 2:
            candidates.append(node)
    if not candidates:
        return None
    rng.shuffle(candidates)
    for survivor in candidates:
        path = tree_path_to_root(parent, survivor)
        chain = path[1 : 1 + chain_length]
        if f is not None:
            budget = EdgeBudget(topology, f)
            try:
                for node in chain:
                    budget.charge(node)
            except ValueError:
                continue
        schedule = FailureSchedule()
        for node in chain:
            schedule.add(node, at_round)
        return schedule
    return None
