"""ddmin-style minimization of repro bundles (fault-schedule shrinking).

A chaos-found failure usually drags along dozens of irrelevant events: the
recorded bundle (:mod:`repro.sim.recorder`) contains every scheduled crash
and every message-fault decision, most of which have nothing to do with
the violation.  :func:`shrink_bundle` searches the *combined* space of

* declared oblivious crashes (``bundle.schedule`` entries),
* recorded drop/duplicate/delay decisions (``bundle.transmits``),
* recorded inbox reorders (``bundle.reorders``),
* recorded online (adaptive) crashes (``bundle.crashes``), and
* declared Byzantine behaviours (``bundle.params["byz"]["behaviors"]``
  entries — the deterministic schedule is re-run live on replay, so
  removing a behaviour removes that node's lies wholesale)

for a 1-minimal subset that still fails: removing any single remaining
event makes the failure disappear.  Candidates are evaluated by replaying
the modified bundle in best-effort mode (``strict=False`` — removing an
event legitimately changes downstream rounds) and comparing the resulting
:func:`failure_signature` against the original.

The algorithm is Zeller-Hildebrandt ddmin with an explicit evaluation and
wall-clock budget plus progress logging; afterwards the surviving events
are *re-recorded* (:func:`rerecord_bundle`) so the minimized bundle carries
fresh digests and an exact expected outcome, making it strict-replayable
and fit for the regression corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..sim.recorder import ExecutionRecord

#: One shrinkable event: ("schedule", node) | ("transmit", index) |
#: ("reorder", index) | ("crash", index) | ("byz", node).
Component = Tuple[str, Any]


def _byz_behaviors(bundle: ExecutionRecord) -> dict:
    """The bundle's Byzantine behaviour map (``{node_str: behaviour}``)."""
    return (bundle.params.get("byz") or {}).get("behaviors") or {}


def components_of(bundle: ExecutionRecord) -> List[Component]:
    """All shrinkable events of a bundle, in a stable order."""
    out: List[Component] = []
    out.extend(("schedule", node) for node in sorted(bundle.schedule))
    out.extend(("transmit", i) for i in range(len(bundle.transmits)))
    out.extend(("reorder", i) for i in range(len(bundle.reorders)))
    out.extend(("crash", i) for i in range(len(bundle.crashes)))
    out.extend(("byz", node) for node in sorted(_byz_behaviors(bundle)))
    return out


def restrict_bundle(
    bundle: ExecutionRecord, keep: Sequence[Component]
) -> ExecutionRecord:
    """A copy of ``bundle`` containing only the ``keep`` events.

    Removed transmit/reorder/crash decisions simply revert to passthrough
    during best-effort replay; removed schedule entries uncrash the node.
    The digests and expected outcome are dropped — a restricted bundle is
    a *probe*, not a recording (re-record it to get those back).
    """
    kept = set(keep)
    params = dict(bundle.params)
    if params.get("byz"):
        byz = dict(params["byz"])
        byz["behaviors"] = {
            node: behaviour
            for node, behaviour in _byz_behaviors(bundle).items()
            if ("byz", node) in kept
        }
        params["byz"] = byz
    return replace(
        bundle,
        params=params,
        schedule={
            node: rnd
            for node, rnd in bundle.schedule.items()
            if ("schedule", node) in kept
        },
        transmits=[
            t for i, t in enumerate(bundle.transmits) if ("transmit", i) in kept
        ],
        reorders=[
            r for i, r in enumerate(bundle.reorders) if ("reorder", i) in kept
        ],
        crashes=[
            c for i, c in enumerate(bundle.crashes) if ("crash", i) in kept
        ],
        digests={},
        expected={},
    )


def failure_signature(record) -> Optional[Tuple]:
    """The equivalence class a failure belongs to, or None for a clean run.

    * ``("error", kind)`` — the run raised and was captured;
    * ``("violation", rule, rule, ...)`` — recorded monitor violations
      (sorted rule names, deduplicated);
    * ``("silent-wrong",)`` — an output graded incorrect with no recorded
      violation (the zero-error property broke silently);
    * ``("no-output",)`` — no result where correctness demanded one.
    """
    if record.failed:
        return ("error", record.error_kind)
    violations = record.extra.get("violations") or ()
    if violations:
        rules = sorted({v.split("]")[0].lstrip("[").split("@")[0]
                        for v in violations})
        return ("violation", *rules)
    if not record.correct:
        if record.result is None:
            return ("no-output",)
        return ("silent-wrong",)
    return None


def signature_matches(expected: Optional[Tuple], got: Optional[Tuple]) -> bool:
    """Whether ``got`` reproduces the failure class ``expected``.

    Violation signatures match when the expected rules are a subset of the
    observed ones (a shrunk schedule may trip an extra monitor on the way
    to the same root cause); all other signatures must match exactly.
    """
    if expected is None or got is None:
        return expected == got
    if expected[0] == "violation" and got[0] == "violation":
        return set(expected[1:]) <= set(got[1:])
    return expected == got


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink_bundle` call.

    ``minimal`` is guaranteed 1-minimal only when ``complete`` is True —
    a budget exhaustion returns the best reduction found so far.
    """

    minimal: ExecutionRecord
    original_size: int
    shrunk_size: int
    evaluations: int
    wall_seconds: float
    complete: bool
    kept: List[Component] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        """Fraction of events removed (0.0 when nothing shrank)."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.shrunk_size / self.original_size


class _Budget:
    """Shared evaluation/wall-clock budget for one shrink session."""

    def __init__(self, max_evals: Optional[int], max_seconds: Optional[float]):
        self.max_evals = max_evals
        self.max_seconds = max_seconds
        self.evals = 0
        self.started = time.monotonic()

    @property
    def exhausted(self) -> bool:
        if self.max_evals is not None and self.evals >= self.max_evals:
            return True
        if (
            self.max_seconds is not None
            and time.monotonic() - self.started >= self.max_seconds
        ):
            return True
        return False

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started


def _chunks(items: List[Component], n: int) -> List[List[Component]]:
    """Split ``items`` into ``n`` contiguous, non-empty chunks."""
    n = min(n, len(items))
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def shrink_bundle(
    bundle: ExecutionRecord,
    predicate: Optional[Callable[[Any], bool]] = None,
    max_evals: int = 500,
    max_seconds: Optional[float] = 120.0,
    log: Optional[Callable[[str], None]] = None,
    rerecord: bool = True,
) -> ShrinkResult:
    """Minimize a failing bundle to a 1-minimal fault schedule.

    ``predicate(run_record) -> bool`` decides whether a probe still fails;
    the default compares :func:`failure_signature` against the bundle's
    recorded failure (derived from its ``expected`` block via one baseline
    replay).  ``max_evals`` / ``max_seconds`` bound the search; ``log``
    (e.g. ``print``) receives one progress line per reduction.

    Returns a :class:`ShrinkResult` whose ``minimal`` bundle — re-recorded
    by default so it is strict-replayable — still fails, and from which no
    single event can be removed without losing the failure (when
    ``complete``).

    Raises ``ValueError`` if the unmodified bundle does not fail its own
    predicate (nothing to shrink — likely a flaky or mis-captured run).
    """
    # Imported lazily: analysis imports sim/adversary at package load.
    from ..sim.replay import replay_bundle

    log = log or (lambda _msg: None)
    budget = _Budget(max_evals, max_seconds)

    def probe(keep: List[Component]):
        budget.evals += 1
        return replay_bundle(
            restrict_bundle(bundle, keep), strict=False, check_outcome=False
        ).record

    if predicate is None:
        baseline = probe(components_of(bundle))
        target = failure_signature(baseline)
        if target is None:
            raise ValueError(
                "bundle does not fail when replayed: nothing to shrink "
                "(expected outcome: "
                f"{bundle.expected.get('error_kind') or 'incorrect result'})"
            )

        def predicate(record) -> bool:
            return signature_matches(target, failure_signature(record))

        log(f"shrink: target failure signature {target}")

    components = components_of(bundle)
    original_size = len(components)
    if not predicate(probe(components)):
        raise ValueError(
            "bundle does not satisfy the failure predicate when replayed "
            "unmodified; refusing to shrink a non-reproducing bundle"
        )

    current = list(components)
    n = 2
    complete = True
    while len(current) >= 2:
        if budget.exhausted:
            complete = False
            log(
                f"shrink: budget exhausted after {budget.evals} evaluations "
                f"({budget.elapsed:.1f}s) with {len(current)} events left"
            )
            break
        chunks = _chunks(current, n)
        reduced = False
        for chunk in chunks:
            if budget.exhausted:
                break
            if len(chunk) == len(current):
                continue
            if predicate(probe(chunk)):
                log(
                    f"shrink: {len(current)} -> {len(chunk)} events "
                    f"(subset, eval {budget.evals})"
                )
                current, n, reduced = list(chunk), 2, True
                break
        if reduced:
            continue
        for i in range(len(chunks)):
            if budget.exhausted:
                break
            complement = [
                comp for j, chunk in enumerate(chunks) if j != i
                for comp in chunk
            ]
            if complement and len(complement) < len(current) and predicate(
                probe(complement)
            ):
                log(
                    f"shrink: {len(current)} -> {len(complement)} events "
                    f"(complement, eval {budget.evals})"
                )
                current, n, reduced = complement, max(n - 1, 2), True
                break
        if reduced:
            continue
        if n >= len(current):
            break
        n = min(n * 2, len(current))

    minimal = restrict_bundle(bundle, current)
    if rerecord:
        minimal = rerecord_bundle(minimal)
    log(
        f"shrink: done — {original_size} -> {len(current)} events in "
        f"{budget.evals} evaluations ({budget.elapsed:.1f}s)"
    )
    return ShrinkResult(
        minimal=minimal,
        original_size=original_size,
        shrunk_size=len(current),
        evaluations=budget.evals,
        wall_seconds=budget.elapsed,
        complete=complete,
        kept=list(current),
    )


def rerecord_bundle(bundle: ExecutionRecord) -> ExecutionRecord:
    """Re-execute a (possibly restricted) bundle and record it afresh.

    The surviving fault decisions are applied best-effort through a
    :class:`repro.sim.replay.ReplayInjector`, and a fresh
    :class:`repro.sim.recorder.RecordingInjector` around it captures new
    digests, re-keyed decisions, and the actual outcome — producing a
    bundle that replays strictly (bit-identical) on its own.
    """
    import random

    from ..analysis.runner import safe_run_protocol
    from ..core.caaf import SUM, by_name
    from ..sim.monitors import standard_monitors, violations_of
    from ..sim.recorder import RecordingInjector, make_execution_record
    from ..sim.replay import ReplayInjector, _rng_state_from_jsonable

    topology = bundle.build_topology()
    inputs = bundle.build_inputs()
    schedule = bundle.build_schedule()
    rng = random.Random(bundle.seed or 0)
    if bundle.rng_state is not None:
        rng.setstate(_rng_state_from_jsonable(bundle.rng_state))
    rng_state = rng.getstate()
    params = bundle.params
    caaf = by_name(params["caaf"]) if params.get("caaf") else SUM
    # Mirror replay_bundle's resilience reconstruction: the re-recorded
    # expected outcome must come from the same code path (transport
    # windows, failover epochs, integrity verification, corruption
    # oracle) that strict replay will later take, or the fresh bundle
    # diverges on its own first replay.
    transport = None
    recovery = None
    integrity = None
    allow_root_crash = bool(params.get("allow_root_crash"))
    if params.get("transport"):
        from ..resilience.transport import TransportConfig

        transport = TransportConfig.from_jsonable(params["transport"])
    if params.get("recovery"):
        from ..resilience.failover import RecoveryPolicy

        recovery = RecoveryPolicy.from_jsonable(params["recovery"])
    if params.get("integrity"):
        from ..integrity.frames import IntegrityConfig, as_integrity

        integrity = as_integrity(
            IntegrityConfig.from_jsonable(params["integrity"])
        )
    if integrity is None and recovery is not None:
        from ..integrity.frames import as_integrity

        integrity = as_integrity(recovery.integrity)
    churn = None
    churn_policy = None
    if params.get("churn"):
        from ..sim.faults import ChurnSchedule

        churn = ChurnSchedule.from_jsonable(params["churn"])
    if params.get("churn_policy"):
        from ..resilience.epochs import ChurnPolicy

        churn_policy = ChurnPolicy.from_jsonable(params["churn_policy"])
    byz = None
    byz_config = None
    if params.get("byz"):
        from ..sim.faults import ByzantineSchedule

        # Re-run live (no RNG to re-roll) so the fresh recording carries
        # the same lies and the same ground-truth taint ledger.
        byz = ByzantineSchedule.from_jsonable(params["byz"])
    if params.get("byz_config"):
        from ..resilience.byzantine import ByzantineConfig

        byz_config = ByzantineConfig.from_jsonable(params["byz_config"])
    replayer = ReplayInjector(bundle, strict=False)
    monitors = None
    if bundle.monitor_mode == "record":
        monitors = standard_monitors(
            topology,
            inputs,
            f=params.get("f"),
            caaf=caaf,
            mode="record",
            recovery=allow_root_crash or recovery is not None,
            corruption=[replayer] if replayer.has_rewrites else (),
            integrity=integrity,
            churn=churn is not None,
            byz=byz if byz is not None and byz.has_events else None,
        )
    recorder = RecordingInjector([replayer])
    record = safe_run_protocol(
        bundle.protocol,
        topology,
        inputs,
        schedule=schedule,
        seed=bundle.seed,
        rng=rng,
        f=params.get("f"),
        b=params.get("b"),
        t=params.get("t"),
        c=params.get("c", 2),
        caaf=caaf,
        strict=bundle.strict_model,
        injectors=(recorder,),
        monitors=monitors,
        strict_monitors=bundle.monitor_mode == "strict",
        transport=transport,
        recovery=recovery,
        integrity=integrity,
        churn=churn,
        churn_policy=churn_policy,
        byz=byz,
        byz_config=byz_config,
        allow_root_crash=allow_root_crash,
    )
    if monitors and not record.failed and not record.extra.get("violations"):
        events = violations_of(monitors)
        if events:
            record.extra["violations"] = [str(e) for e in events]
    return make_execution_record(
        recorder,
        bundle.protocol,
        topology,
        inputs,
        schedule,
        dict(bundle.params),
        run_record=record,
        seed=bundle.seed,
        rng_state=rng_state,
        strict_model=bundle.strict_model,
        monitor_mode=bundle.monitor_mode,
    )
