"""Edge-failure budget accounting.

The paper bounds failures by ``f``, the number of edges incident to failed
nodes.  Crashing a node "costs" the edges it touches that are not already
failed; this module provides the greedy budget tracker adversary generators
use to stay within ``f``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..graphs.topology import Topology


class EdgeBudget:
    """Tracks how many edge failures a growing set of crashed nodes costs."""

    def __init__(self, topology: Topology, f: int) -> None:
        if f < 0:
            raise ValueError(f"budget must be non-negative, got {f}")
        self.topology = topology
        self.f = f
        self.failed: Set[int] = set()
        self.used = 0

    def cost_of(self, node: int) -> int:
        """Marginal edge failures from additionally crashing ``node``."""
        if node in self.failed:
            return 0
        return sum(
            1 for v in self.topology.neighbours(node) if v not in self.failed
        )

    def can_afford(self, node: int) -> bool:
        """Whether crashing ``node`` stays within the budget."""
        return self.used + self.cost_of(node) <= self.f

    def charge(self, node: int) -> int:
        """Crash ``node``; returns the marginal cost.  Raises if over budget."""
        if node == self.topology.root:
            raise ValueError("the root node may not fail")
        cost = self.cost_of(node)
        if self.used + cost > self.f:
            raise ValueError(
                f"crashing node {node} costs {cost} edges; "
                f"only {self.f - self.used} of {self.f} remain"
            )
        self.failed.add(node)
        self.used += cost
        return cost

    @property
    def remaining(self) -> int:
        """Edge failures still affordable."""
        return self.f - self.used


def affordable_nodes(
    budget: EdgeBudget, candidates: Optional[Iterable[int]] = None
) -> List[int]:
    """Candidates (default: all non-root nodes) the budget can still afford."""
    topo = budget.topology
    pool = candidates if candidates is not None else topo.non_root_nodes()
    return [
        u
        for u in pool
        if u not in budget.failed and u != topo.root and budget.can_afford(u)
    ]
