"""Oblivious crash-failure adversaries with edge-failure budgets."""

from .adaptive import (
    ADAPTIVE_FAMILIES,
    AdaptiveAdversary,
    RootIsolationAdversary,
    TopTalkerAdversary,
    TriggerAdversary,
    make_adaptive,
)
from .adversaries import (
    articulation_points,
    blocker_failures,
    chain_failures,
    concentrated_failures,
    no_failures,
    predicted_tree,
    random_failures,
    spread_failures,
    targeted_failures,
    tree_path_to_root,
)
from .budget import EdgeBudget, affordable_nodes
from .schedule import FailureSchedule, merge_schedules
from .search import (
    SearchResult,
    make_algorithm1_evaluator,
    mutate_schedule,
    random_schedule,
    search_worst_adversary,
)
from .shrink import (
    ShrinkResult,
    components_of,
    failure_signature,
    rerecord_bundle,
    restrict_bundle,
    shrink_bundle,
)

__all__ = [
    "ADAPTIVE_FAMILIES",
    "AdaptiveAdversary",
    "RootIsolationAdversary",
    "TopTalkerAdversary",
    "TriggerAdversary",
    "make_adaptive",
    "SearchResult",
    "ShrinkResult",
    "components_of",
    "failure_signature",
    "rerecord_bundle",
    "restrict_bundle",
    "shrink_bundle",
    "make_algorithm1_evaluator",
    "mutate_schedule",
    "random_schedule",
    "search_worst_adversary",
    "articulation_points",
    "targeted_failures",
    "EdgeBudget",
    "FailureSchedule",
    "affordable_nodes",
    "blocker_failures",
    "chain_failures",
    "concentrated_failures",
    "merge_schedules",
    "no_failures",
    "predicted_tree",
    "random_failures",
    "spread_failures",
    "tree_path_to_root",
]
