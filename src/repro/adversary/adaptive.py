"""Adaptive (non-oblivious) adversaries that choose crashes online.

The paper's guarantees quantify over *oblivious* adversaries: the crash
schedule is fixed before the protocol flips any coins (Section 2).  The
adversaries here deliberately step outside that model — they observe live
traffic through the :class:`repro.sim.faults.FaultInjector` middleware
hooks and decide *during* the execution whom to kill.  Running them
against Algorithm 1 / AGG+VERI locates empirically where the oblivious
assumption is load-bearing (cf. the adaptive-vs-oblivious gap studied in
the fault-tolerant consensus literature).

All families respect the edge-failure budget ``f`` via
:class:`repro.adversary.budget.EdgeBudget` and never crash the root
directly (attacks on the root's *neighbourhood* are allowed — that is one
of the interesting out-of-model probes).  Crashes are injected with
:meth:`repro.sim.network.Network.schedule_crash` and take effect the
following round.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from ..graphs.topology import Topology
from ..sim.faults import FaultInjector
from .budget import EdgeBudget


class AdaptiveAdversary(FaultInjector):
    """Base class: a crash-only injector with an edge-failure budget.

    Subclasses implement a targeting policy on top of the observation
    hooks; they call :meth:`try_crash` which enforces the budget, root
    safety, and liveness.
    """

    def __init__(
        self, topology: Topology, f: int, seed: int = 0
    ) -> None:
        super().__init__()
        self.topology = topology
        self.f = f
        self.rng = random.Random(seed)
        self.budget = EdgeBudget(topology, f)
        #: Nodes this adversary crashed, in crash order.
        self.kills: List[int] = []

    def try_crash(self, node: int, rnd: int) -> bool:
        """Crash ``node`` from round ``rnd + 1`` if the budget allows.

        Returns True on success; refuses the root, already-dead nodes,
        and crashes the edge budget cannot afford.
        """
        if node == self.topology.root:
            return False
        if self.network is None or not self.network.is_alive(node, rnd):
            return False
        if not self.budget.can_afford(node):
            return False
        self.budget.charge(node)
        self.network.schedule_crash(node, rnd + 1)
        self.kills.append(node)
        return True

    @property
    def exhausted(self) -> bool:
        """Whether no affordable candidate is left."""
        return not any(
            self.budget.can_afford(u) for u in self.topology.non_root_nodes()
        )


class TopTalkerAdversary(AdaptiveAdversary):
    """Periodically kill the live node that has sent the most bits.

    The classic "follow the traffic" attack: every ``period`` rounds the
    adversary crashes the current non-root bandwidth leader, aiming at
    whichever node the protocol elected into a structurally important
    role (tree parents, flood relays).  An oblivious adversary cannot
    express this policy because the leader depends on the protocol's
    coins.
    """

    def __init__(
        self,
        topology: Topology,
        f: int,
        period: int = 5,
        seed: int = 0,
    ) -> None:
        super().__init__(topology, f, seed=seed)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self._bits: Dict[int, int] = {}

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Accumulate per-node traffic."""
        self._bits[node] = self._bits.get(node, 0) + bits

    def end_round(self, rnd: int) -> None:
        """Every ``period`` rounds, crash the loudest affordable node."""
        if rnd % self.period != 0:
            return
        ranked = sorted(
            self._bits.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for node, _bits in ranked:
            if node == self.topology.root:
                continue
            if self.network.is_alive(node, rnd) and self.try_crash(node, rnd):
                return


class TriggerAdversary(AdaptiveAdversary):
    """Kill each node right after it first broadcasts a given part kind.

    Aimed at protocol-phase transitions: with ``kind="aggregation"`` every
    node dies immediately after handing its partial sum upward — the
    in-flight state loss AGG's speculative flooding defends against,
    applied *reactively* to every sender instead of a pre-committed set.
    ``limit`` bounds the number of kills (on top of the edge budget).
    """

    def __init__(
        self,
        topology: Topology,
        f: int,
        kind: str,
        limit: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(topology, f, seed=seed)
        self.kind = kind
        self.limit = limit
        self._pending: List[int] = []
        self._seen: Set[int] = set()

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Mark senders of the trigger kind for end-of-round execution."""
        if node in self._seen or node == self.topology.root:
            return
        if any(p.kind == self.kind for p in parts):
            self._seen.add(node)
            self._pending.append(node)

    def end_round(self, rnd: int) -> None:
        """Crash every freshly triggered node the budget affords."""
        pending, self._pending = self._pending, []
        for node in pending:
            if self.limit is not None and len(self.kills) >= self.limit:
                return
            self.try_crash(node, rnd)


class RootIsolationAdversary(AdaptiveAdversary):
    """Crash the root's neighbours as soon as each one first speaks.

    Never touches the root itself, but works toward disconnecting it —
    directly attacking the connectivity and ``diam(H) <= c*d`` assumptions
    the correctness definition leans on.  On topologies where the budget
    covers the whole root neighbourhood this reliably produces runs whose
    only correct outputs are tiny survivor sums (or no output at all).
    """

    def __init__(self, topology: Topology, f: int, seed: int = 0) -> None:
        super().__init__(topology, f, seed=seed)
        self.targets = set(topology.neighbours(topology.root))
        self._pending: List[int] = []
        self._seen: Set[int] = set()

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Queue root neighbours the first time they broadcast."""
        if node in self.targets and node not in self._seen:
            self._seen.add(node)
            self._pending.append(node)

    def end_round(self, rnd: int) -> None:
        """Crash queued root neighbours while the budget lasts."""
        pending, self._pending = self._pending, []
        for node in pending:
            self.try_crash(node, rnd)


ADAPTIVE_FAMILIES = ("top-talker", "trigger", "root-isolation")


def make_adaptive(
    family: str,
    topology: Topology,
    f: int,
    seed: int = 0,
) -> AdaptiveAdversary:
    """Build an adaptive adversary from a CLI-style family spec.

    Specs: ``top-talker``, ``top-talker:<period>``, ``trigger:<kind>``,
    ``root-isolation``.
    """
    name, _, arg = family.partition(":")
    if name == "top-talker":
        period = int(arg) if arg else 5
        return TopTalkerAdversary(topology, f, period=period, seed=seed)
    if name == "trigger":
        return TriggerAdversary(topology, f, kind=arg or "aggregation", seed=seed)
    if name == "root-isolation":
        return RootIsolationAdversary(topology, f, seed=seed)
    raise ValueError(
        f"unknown adaptive family {family!r} (expected one of "
        f"{ADAPTIVE_FAMILIES})"
    )
