"""Oblivious crash-failure schedules (the paper's failure model).

The adversary "adversarially decides beforehand (i.e., before the protocol
flips any coins) which nodes fail at what time" (Section 2).  A schedule is
therefore a fixed map from node id to the first round in which the node is
dead.  An edge *fails* iff at least one endpoint crashes; ``f`` bounds the
total number of edge failures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..graphs.topology import Topology
from ..sim.network import ROOT_CRASH_ERROR


class FailureSchedule:
    """A fixed assignment of crash rounds to (non-root) nodes."""

    def __init__(self, crash_rounds: Optional[Mapping[int, int]] = None) -> None:
        self.crash_rounds: Dict[int, int] = {}
        for node, rnd in (crash_rounds or {}).items():
            self.add(node, rnd)

    def add(self, node: int, rnd: int) -> "FailureSchedule":
        """Schedule ``node`` to be dead from round ``rnd`` on."""
        if rnd < 1:
            raise ValueError(f"crash round must be >= 1, got {rnd}")
        existing = self.crash_rounds.get(node)
        self.crash_rounds[node] = rnd if existing is None else min(existing, rnd)
        return self

    def crash_round(self, node: int) -> float:
        """First dead round for ``node`` (infinity if it never crashes)."""
        return self.crash_rounds.get(node, math.inf)

    @property
    def failed_nodes(self) -> Set[int]:
        """All nodes that crash at some point."""
        return set(self.crash_rounds)

    def failed_by(self, rnd: int) -> Set[int]:
        """Nodes dead in round ``rnd`` (i.e. with crash round <= rnd)."""
        return {u for u, r in self.crash_rounds.items() if r <= rnd}

    def failures_in_window(self, start: int, end: int) -> Set[int]:
        """Nodes whose crash round falls in ``[start, end]``."""
        return {u for u, r in self.crash_rounds.items() if start <= r <= end}

    def edge_failures(self, topology: Topology) -> int:
        """Total edge failures: edges with at least one crashed endpoint."""
        return topology.edges_incident(self.failed_nodes)

    def edge_failures_in_window(
        self, topology: Topology, start: int, end: int
    ) -> int:
        """Edge failures attributable to crashes inside ``[start, end]``.

        An edge is counted iff its *first* failing endpoint crashes inside
        the window — so summing disjoint windows never double counts and
        totals :meth:`edge_failures`.
        """
        count = 0
        for u, v in topology.edges():
            first = min(self.crash_round(u), self.crash_round(v))
            if start <= first <= end:
                count += 1
        return count

    def validate(
        self,
        topology: Topology,
        f: Optional[int] = None,
        allow_root_crash: bool = False,
    ) -> None:
        """Check the schedule against the paper's model constraints.

        * the root never fails (skipped under ``allow_root_crash``, the
          opt-in used by the :mod:`repro.resilience` failover layer);
        * all failing nodes exist in the topology;
        * if ``f`` is given, the edge-failure budget is respected.
        """
        if topology.root in self.crash_rounds and not allow_root_crash:
            raise ValueError(ROOT_CRASH_ERROR)
        unknown = self.failed_nodes - set(topology.adjacency)
        if unknown:
            raise ValueError(f"schedule names unknown nodes: {sorted(unknown)}")
        if f is not None:
            used = self.edge_failures(topology)
            if used > f:
                raise ValueError(
                    f"schedule uses {used} edge failures, budget is {f}"
                )

    def respects_c_constraint(self, topology: Topology, c: int) -> bool:
        """Whether ``diam(H) <= c * d`` holds after every crash time.

        ``H`` is the root's remaining component.  The paper assumes failures
        never blow the diameter past ``c * d`` for a known constant ``c``.
        """
        bound = c * topology.diameter
        crash_times = sorted(set(self.crash_rounds.values()))
        for when in crash_times:
            failed = self.failed_by(when)
            if topology.remaining_diameter(failed) > bound:
                return False
        return True

    def __len__(self) -> int:
        return len(self.crash_rounds)

    def __repr__(self) -> str:
        items = sorted(self.crash_rounds.items())
        return f"FailureSchedule({items!r})"


def merge_schedules(schedules: Iterable[FailureSchedule]) -> FailureSchedule:
    """Combine schedules, keeping the earliest crash round per node."""
    merged = FailureSchedule()
    for schedule in schedules:
        for node, rnd in schedule.crash_rounds.items():
            merged.add(node, rnd)
    return merged
